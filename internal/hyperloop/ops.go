package hyperloop

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// opParams carries one operation's arguments through metadata building —
// the shared encoding from internal/protocol.
type opParams = protocol.Op

// stagingAddr returns replica r's staging slot address for seq.
func (g *Group) stagingAddr(r *replica, seq uint64) uint64 {
	return r.stagingOff + (seq%uint64(g.cfg.Depth))*uint64(r.stagingSlot)
}

func (g *Group) ackAddr(seq uint64) uint64 {
	return g.ackOff + (seq%uint64(g.cfg.Depth))*uint64(g.lay.ackSlotSize())
}

// buildBlock serializes hop i's descriptor block (L1, L2, F1, F2) for the
// given operation into buf. The client pre-computes every descriptor —
// including next-hop rkeys and staging addresses learned at setup — exactly
// as HyperLoop's client library does (§4.1, "the metadata ... is
// pre-calculated by the client").
func (g *Group) buildBlock(buf []byte, i int, seq uint64, kind opKind, p opParams) error {
	r := g.replicas[i-1]

	l1 := rdma.WQE{Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq}
	switch {
	case kind == kindCAS && p.Exec[i-1]:
		resultAddr := g.stagingAddr(r, seq) + uint64(g.lay.resultOffsetInStaging(i, i))
		l1 = rdma.WQE{
			Opcode: rdma.OpCAS, Flags: rdma.FlagSignaled, WRID: seq,
			Local: resultAddr, Remote: uint64(p.Off),
			Compare: p.Old, Swap: p.New, Aux1: r.mirror.RKey,
		}
	case kind == kindMemcpy:
		l1 = rdma.WQE{
			Opcode: rdma.OpMemcpy, Flags: rdma.FlagSignaled, WRID: seq,
			Local: uint64(p.Src), Len: uint64(p.Size), Remote: uint64(p.Dst),
		}
	}

	l2 := rdma.WQE{Opcode: rdma.OpNop, Flags: rdma.FlagSignaled, WRID: seq}
	switch {
	case kind == kindWrite && p.Durable:
		l2 = rdma.WQE{
			Opcode: rdma.OpFlush, Flags: rdma.FlagSignaled, WRID: seq,
			Remote: uint64(p.Off), Len: uint64(p.Size), Aux1: r.mirror.RKey,
		}
	case kind == kindMemcpy && p.Durable:
		l2 = rdma.WQE{
			Opcode: rdma.OpFlush, Flags: rdma.FlagSignaled, WRID: seq,
			Remote: uint64(p.Dst), Len: uint64(p.Size), Aux1: r.mirror.RKey,
		}
	case kind == kindFlush:
		l2 = rdma.WQE{
			Opcode: rdma.OpFlush, Flags: rdma.FlagSignaled, WRID: seq,
			Remote: uint64(p.Off), Len: uint64(p.Size), Aux1: r.mirror.RKey,
		}
	}

	f1 := rdma.WQE{Opcode: rdma.OpNop, WRID: seq}
	if kind == kindWrite && !r.isTail {
		next := g.replicas[i] // hop i+1 (0-based index i)
		f1 = rdma.WQE{
			Opcode: rdma.OpWrite, WRID: seq,
			Local: uint64(p.Off), Len: uint64(p.Size),
			Remote: uint64(p.Off), Aux1: next.mirror.RKey,
		}
	}

	var f2 rdma.WQE
	if r.isTail {
		f2 = rdma.WQE{
			Opcode: rdma.OpWriteImm, Flags: rdma.FlagSignaled, WRID: seq,
			Local: g.stagingAddr(r, seq), Len: uint64(r.metaRest),
			Remote: g.ackAddr(seq), Aux1: g.ackMR.RKey, Imm: uint32(seq),
		}
	} else {
		f2 = rdma.WQE{
			Opcode: rdma.OpSend, Flags: rdma.FlagSignaled, WRID: seq,
			Local: g.stagingAddr(r, seq), Len: uint64(r.metaRest),
		}
	}

	for j, w := range []rdma.WQE{l1, l2, f1, f2} {
		if err := w.EncodeDesc(buf[j*rdma.DescLen:]); err != nil {
			return err
		}
	}
	return nil
}

// issue builds and transmits one group operation, returning its pending
// handle. The caller awaits op.Sig.
func (g *Group) issue(kind opKind, p opParams) (*protocol.Pending, error) {
	if g.trk.Closed() {
		return nil, ErrClosed
	}
	if !g.trk.HasWindow() {
		return nil, ErrTooManyInFlight
	}
	if p.Off < 0 || p.Off+p.Size > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: range [%d,+%d) outside mirror", ErrBadArgument, p.Off, p.Size)
	}
	if kind == kindMemcpy && (p.Src < 0 || p.Src+p.Size > g.cfg.MirrorSize ||
		p.Dst < 0 || p.Dst+p.Size > g.cfg.MirrorSize) {
		return nil, fmt.Errorf("%w: memcpy range outside mirror", ErrBadArgument)
	}
	if kind == kindCAS && len(p.Exec) != g.lay.groupSize {
		return nil, fmt.Errorf("%w: execute map must have %d entries", ErrBadArgument, g.lay.groupSize)
	}
	seq := g.trk.NextSeq()

	// Build the full metadata message for hop 1.
	msg := make([]byte, g.lay.metaLen(1))
	for i := 1; i <= g.lay.groupSize; i++ {
		if err := g.buildBlock(msg[(i-1)*descBlockSize:], i, seq, kind, p); err != nil {
			return nil, err
		}
	}
	hdr := msg[g.lay.groupSize*descBlockSize+g.lay.resultsLen():]
	binary.LittleEndian.PutUint64(hdr, seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(kind))

	metaAddr := g.metaOff + (seq%uint64(g.cfg.Depth))*uint64(g.lay.metaLen(1))
	if err := g.client.Memory().Write(int(metaAddr), msg); err != nil {
		return nil, err
	}

	op := g.trk.Track(seq, kind)

	// The client mirrors the operation on its own copy (§4.1: the client
	// performs the memory operation in its own region and the replica NICs
	// perform the same operation in theirs).
	if err := protocol.ApplyLocal(g.client.Memory(), kind, p); err != nil {
		return nil, err
	}

	// Transmit: data WRITE first (gWRITE only), then the metadata SEND.
	// Reliable-connection FIFO guarantees the data lands before the
	// receive completion that triggers the chain.
	if kind == kindWrite {
		if _, err := g.qpHead.PostSend(rdma.WQE{
			Opcode: rdma.OpWrite, WRID: seq,
			Local: uint64(p.Off), Len: uint64(p.Size),
			Remote: uint64(p.Off), Aux1: g.replicas[0].mirror.RKey,
		}); err != nil {
			return nil, err
		}
	}
	if _, err := g.qpHead.PostSend(rdma.WQE{
		Opcode: rdma.OpSend, WRID: seq,
		Local: metaAddr, Len: uint64(g.lay.metaLen(1)),
	}); err != nil {
		return nil, err
	}
	g.trk.MarkIssued()
	return op, nil
}

// WriteLocal stores data into the client's mirror; the usual pattern is
// WriteLocal followed by Write to replicate the range.
func (g *Group) WriteLocal(off int, data []byte) error {
	if off < 0 || off+len(data) > g.cfg.MirrorSize {
		return fmt.Errorf("%w: local write outside mirror", ErrBadArgument)
	}
	return g.client.Memory().Write(off, data)
}

// ReadLocal returns a copy of the client's mirror range.
func (g *Group) ReadLocal(off, n int) ([]byte, error) {
	if off < 0 || off+n > g.cfg.MirrorSize {
		return nil, fmt.Errorf("%w: local read outside mirror", ErrBadArgument)
	}
	buf := make([]byte, n)
	err := g.client.Memory().Read(off, buf)
	return buf, err
}

// WriteAsync replicates [off, off+size) of the mirror to all replicas
// (gWRITE), optionally flushing each replica's NVM (interleaved gFLUSH).
// The returned signal fires when the tail's group ACK arrives.
func (g *Group) WriteAsync(off, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindWrite, opParams{Off: off, Size: size, Durable: durable})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// retry runs an idempotent async issue function through the shared
// tracker: await, re-issue on ErrTimeout up to MaxRetries extra attempts
// with linear backoff. Only blocking forms of idempotent primitives use it.
func (g *Group) retry(f *sim.Fiber, issue func() (*sim.Signal, error)) error {
	return g.trk.Retry(f, issue)
}

// Write is the blocking form of WriteAsync. With MaxRetries > 0 a timed-out
// write is re-issued (fresh sequence number) after linear backoff.
func (g *Group) Write(f *sim.Fiber, off, size int, durable bool) error {
	return g.retry(f, func() (*sim.Signal, error) {
		return g.WriteAsync(off, size, durable)
	})
}

// MemcpyAsync copies [src, src+size) to [dst, dst+size) locally on every
// group member (gMEMCPY) — the NIC-offloaded log-execution step.
func (g *Group) MemcpyAsync(src, dst, size int, durable bool) (*sim.Signal, error) {
	op, err := g.issue(kindMemcpy, opParams{Src: src, Dst: dst, Size: size, Durable: durable})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Memcpy is the blocking form of MemcpyAsync, with the same retry policy
// as Write (gMEMCPY is idempotent).
func (g *Group) Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error {
	return g.retry(f, func() (*sim.Signal, error) {
		return g.MemcpyAsync(src, dst, size, durable)
	})
}

// CAS performs a group compare-and-swap (gCAS) of the 8-byte word at off
// on every replica whose execute-map entry is true, returning the original
// value observed at each replica. Entries for skipped replicas are the NOP
// placeholder zero.
func (g *Group) CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error) {
	op, err := g.issue(kindCAS, opParams{Off: off, Size: 8, Old: old, New: new, Exec: exec})
	if err != nil {
		return nil, err
	}
	if err := f.Await(op.Sig); err != nil {
		return nil, err
	}
	return op.Results, nil
}

// FlushAsync makes [off, off+size) durable on every member (gFLUSH).
func (g *Group) FlushAsync(off, size int) (*sim.Signal, error) {
	op, err := g.issue(kindFlush, opParams{Off: off, Size: size})
	if err != nil {
		return nil, err
	}
	return op.Sig, nil
}

// Flush is the blocking form of FlushAsync, with the same retry policy as
// Write (gFLUSH is idempotent).
func (g *Group) Flush(f *sim.Fiber, off, size int) error {
	return g.retry(f, func() (*sim.Signal, error) {
		return g.FlushAsync(off, size)
	})
}

// ReadHead performs a one-sided RDMA READ of the head replica's mirror
// range [remoteOff, remoteOff+size) into the client's mirror at localOff —
// the lock-free read path (§5, "lock-free one-sided reads from exactly one
// replica").
func (g *Group) ReadHead(f *sim.Fiber, remoteOff, localOff, size int) error {
	if localOff < 0 || localOff+size > g.cfg.MirrorSize {
		return fmt.Errorf("%w: read buffer outside mirror", ErrBadArgument)
	}
	if g.trk.Closed() {
		return ErrClosed
	}
	g.nextWRID++
	wrid := g.nextWRID | 1<<63 // disjoint from op sequence numbers
	sig := sim.NewSignal()
	g.reads[wrid] = sig
	if _, err := g.qpHead.PostSend(rdma.WQE{
		Opcode: rdma.OpRead, Flags: rdma.FlagSignaled, WRID: wrid,
		Local: uint64(localOff), Len: uint64(size),
		Remote: uint64(remoteOff), Aux1: g.replicas[0].mirror.RKey,
	}); err != nil {
		delete(g.reads, wrid)
		return err
	}
	return f.Await(sig)
}
