package hyperloop

import (
	"bytes"
	"testing"

	"hyperloop/internal/kvstore"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

func TestClusterDefaults(t *testing.T) {
	c, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ReplicaNICs()) != 3 {
		t.Fatalf("default replicas = %d", len(c.ReplicaNICs()))
	}
	if len(c.Schedulers()) != 3 {
		t.Fatalf("schedulers = %d", len(c.Schedulers()))
	}
	if c.ClientNIC() == nil || c.Kernel() == nil || c.Fabric() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 1, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.NewGroup(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("facade payload")
	err = c.Run(func(f *Fiber) error {
		if err := g.WriteLocal(0, payload); err != nil {
			return err
		}
		return g.Write(f, 0, len(payload), true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, nic := range c.ReplicaNICs() {
		nic.Memory().Crash()
		got := make([]byte, len(payload))
		_ = nic.Memory().Read(0, got)
		if !bytes.Equal(got, payload) {
			t.Fatalf("replica %d lost durable data", i)
		}
	}
}

func TestFacadeNaiveGroupAndLoad(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 2, Replicas: 2, MultiTenantLoad: true, CoresPerServer: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.NewNaiveGroup(64*1024, NaiveEvent)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(f *Fiber) error {
		if err := g.WriteLocal(0, []byte{1, 2, 3}); err != nil {
			return err
		}
		return g.Write(f, 0, 3, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.ReplicaHandlerCPU() <= 0 {
		t.Fatal("naive backend consumed no replica CPU")
	}
}

func TestFacadeRunPropagatesError(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 3, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := txn.ErrLogEmpty
	if got := c.Run(func(f *Fiber) error { return wantErr }); got != wantErr {
		t.Fatalf("Run err = %v, want %v", got, wantErr)
	}
}

// TestFullStackOverFacade wires txn + kvstore + docstore through the
// facade in one scenario — the integration smoke for the public API.
func TestFullStackOverFacade(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 4, Replicas: 3, DeviceSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}

	kcfg := kvstore.Config{LogSize: 32 * 1024, DataSize: 128 * 1024, Seed: 4}
	kvGroup, err := c.NewGroup(kvstore.MirrorSizeFor(kcfg))
	if err != nil {
		t.Fatal(err)
	}
	kv, err := kvstore.Open(kvGroup, kcfg)
	if err != nil {
		t.Fatal(err)
	}

	err = c.Run(func(f *Fiber) error {
		if err := kv.Put(f, []byte("k"), []byte("v")); err != nil {
			return err
		}
		st := kv.Store()
		if _, err := st.Append(f, []wal.Entry{{Off: 64 * 1024, Data: []byte("direct txn")}}); err != nil {
			return err
		}
		_, err := st.ExecuteAll(f)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := kv.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("kv get = %q, %v", v, ok)
	}
}
