package hyperloop

// One benchmark per table/figure of the paper's evaluation. Each iteration
// regenerates the experiment at Quick scale (deterministic per seed; the
// iteration index varies the seed). `go run ./cmd/hyperloop-bench -scale
// full` produces the paper-grade sample counts; these benches exist so
// `go test -bench=.` exercises every experiment end to end and reports the
// headline quantities as custom metrics.

import (
	"testing"
	"time"

	"hyperloop/internal/experiments"
	"hyperloop/internal/sim"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, uint64(i+1), experiments.Quick); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig2a(b *testing.B)  { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig8a(b *testing.B)  { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { benchExperiment(b, "fig8b") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

func BenchmarkAblationLoad(b *testing.B)  { benchExperiment(b, "abl-load") }
func BenchmarkAblationFlush(b *testing.B) { benchExperiment(b, "abl-flush") }
func BenchmarkAblationDepth(b *testing.B) { benchExperiment(b, "abl-depth") }

// BenchmarkGWritePrimitive measures the core primitive directly: virtual
// (simulated) latency of a durable 1KB gWRITE over 3 replicas, reported as
// the custom metric "sim-ns/op" alongside host ns/op.
func BenchmarkGWritePrimitive(b *testing.B) {
	cluster, err := NewCluster(ClusterConfig{Seed: 1, Replicas: 3})
	if err != nil {
		b.Fatal(err)
	}
	group, err := cluster.NewGroup(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	var virtual sim.Duration
	b.ResetTimer()
	err = cluster.Run(func(f *Fiber) error {
		start := f.Now()
		for i := 0; i < b.N; i++ {
			if err := group.Write(f, (i%32)*4096, 1024, true); err != nil {
				return err
			}
		}
		virtual = f.Now().Sub(start)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "sim-ns/op")
}

// BenchmarkGCASPrimitive measures virtual gCAS latency.
func BenchmarkGCASPrimitive(b *testing.B) {
	cluster, err := NewCluster(ClusterConfig{Seed: 1, Replicas: 3})
	if err != nil {
		b.Fatal(err)
	}
	group, err := cluster.NewGroup(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	var virtual sim.Duration
	b.ResetTimer()
	err = cluster.Run(func(f *Fiber) error {
		start := f.Now()
		for i := 0; i < b.N; i++ {
			if _, err := group.CAS(f, 0, uint64(i), uint64(i+1), []bool{true, true, true}); err != nil {
				return err
			}
		}
		virtual = f.Now().Sub(start)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "sim-ns/op")
}

// BenchmarkSimulatorEventRate measures raw kernel throughput (host events
// per second) — the simulator's own performance envelope.
func BenchmarkSimulatorEventRate(b *testing.B) {
	k := sim.NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.After(time.Microsecond, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelAllocs measures steady-state allocations of the kernel hot
// path: an AfterFunc tick chain reusing one Timer plus a cancelled timer per
// tick. With the event free-list this is allocation-free after warm-up.
func BenchmarkKernelAllocs(b *testing.B) {
	k := sim.NewKernel(1)
	var tm, cancel sim.Timer
	n := 0
	noop := func() {}
	var tick func()
	tick = func() {
		n++
		k.AfterFunc(time.Microsecond, noop, &cancel)
		cancel.Stop()
		if n < b.N {
			k.AfterFunc(time.Microsecond, tick, &tm)
		}
	}
	// Warm the free list before measuring.
	k.AfterFunc(time.Microsecond, noop, nil)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.AfterFunc(time.Microsecond, tick, &tm)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkParallelSpeedup runs one latency experiment serially and with the
// worker pool and reports wall-clock speedup as the custom metric
// "speedup-x". On a single-core host it stays near 1; the output is
// byte-identical either way (see experiments.TestSerialParallelIdentical).
func BenchmarkParallelSpeedup(b *testing.B) {
	const id = "abl-load"
	prev := experiments.Parallelism()
	defer experiments.SetParallelism(prev)
	// Untimed warm-up so first-touch heap growth doesn't bias the serial leg.
	if _, err := experiments.Run(id, 1, experiments.Quick); err != nil {
		b.Fatal(err)
	}
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		experiments.SetParallelism(1)
		start := time.Now()
		if _, err := experiments.Run(id, seed, experiments.Quick); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(start)
		experiments.SetParallelism(0) // GOMAXPROCS workers
		start = time.Now()
		if _, err := experiments.Run(id, seed, experiments.Quick); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(start)
	}
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "speedup-x")
	}
}
