// Command benchdiff compares two hyperloop-bench -json reports and
// enforces the CI regression gate.
//
// Usage:
//
//	benchdiff [-eps-tolerance 0.10] [-csv out.csv] [-only exp] BENCH_baseline.json current.json
//
// Strict fields — the simulation's virtual-time behaviour — must match
// exactly: seed, scale, the experiment id sequence, each experiment's
// rendered report text (every latency and throughput number is virtual
// time, so the text is deterministic), and the demand-side counters
// sim_events, cqes, messages, wire_bytes, device_gets, device_puts,
// device_bytes_demand, kernel_gets, fabric_builds. Any strict mismatch
// is a behaviour change: benchdiff prints the first divergence per
// experiment and exits 1. If the change is intentional, regenerate the
// baseline (see ci.sh -update-baseline).
//
// Throughput gate: the aggregate simulator rate (total sim_events over
// total wall time) may not regress more than -eps-tolerance (default 10%)
// below the baseline's. Wall clock is host-dependent, so the band is
// deliberately wide — the gate exists to catch order-of-magnitude
// slowdowns in the event loop, not scheduling jitter. Set the tolerance
// to 0 or less to disable the gate (e.g. when comparing reports from
// different machines).
//
// Advisory fields — per-experiment wall-clock timings, the fast/slow
// dispatch split, and the pools' fresh/reused splits — depend on host
// speed, goroutine scheduling, or the -fastpath setting. benchdiff prints
// their deltas for the log and never fails on them. -csv additionally
// writes the current report's per-experiment wall/event figures as CSV
// for CI artifact upload.
//
// -only <experiment> restricts the strict comparison to one experiment id
// — for iterating on a single experiment locally without re-running the
// full sweep (`hyperloop-bench -exp <id> -json ...` against the committed
// baseline). The whole-run throughput gate is skipped in this mode: the
// baseline's total wall time covers every experiment and would be
// meaningless against a single-experiment run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// expStats mirrors the per-experiment object in hyperloop-bench -json.
// Kept in sync by cmd/hyperloop-bench's TestBaselineMatchesSchema plus
// the strict decode below.
type expStats struct {
	ID     string `json:"id"`
	Report string `json:"report"`

	WallMS       float64 `json:"wall_ms"`
	SimEvents    int64   `json:"sim_events"`
	CQEs         int64   `json:"cqes"`
	Messages     int64   `json:"messages"`
	WireBytes    int64   `json:"wire_bytes"`
	EventsPerSec float64 `json:"events_per_sec"`

	FastDispatches int64 `json:"fast_dispatches"`
	SlowDispatches int64 `json:"slow_dispatches"`

	DeviceGets        int64 `json:"device_gets"`
	DevicePuts        int64 `json:"device_puts"`
	DeviceFresh       int64 `json:"device_fresh"`
	DeviceReused      int64 `json:"device_reused"`
	DeviceBytesZeroed int64 `json:"device_bytes_zeroed"`
	DeviceBytesDemand int64 `json:"device_bytes_demand"`
	KernelGets        int64 `json:"kernel_gets"`
	KernelFresh       int64 `json:"kernel_fresh"`
	KernelReused      int64 `json:"kernel_reused"`
	FabricBuilds      int64 `json:"fabric_builds"`
	FabricReused      int64 `json:"fabric_reused"`
}

type benchReport struct {
	Seed        uint64     `json:"seed"`
	Scale       string     `json:"scale"`
	Procs       int        `json:"procs"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	Experiments []expStats `json:"experiments"`
	TotalWallMS float64    `json:"total_wall_ms"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r benchReport
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// firstLineDiff locates the first differing line of two texts.
func firstLineDiff(a, b string) (int, string, string) {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			return i + 1, la, lb
		}
	}
	return 0, "", ""
}

// aggregateEPS returns a report's whole-run simulator rate: total executed
// events over total wall time. The per-experiment events_per_sec figures
// are too noisy to gate on individually (short experiments finish in a few
// ms); the aggregate amortizes scheduling jitter over the full run.
func aggregateEPS(r *benchReport) float64 {
	if r.TotalWallMS <= 0 {
		return 0
	}
	var ev int64
	for _, e := range r.Experiments {
		ev += e.SimEvents
	}
	return float64(ev) / (r.TotalWallMS / 1000)
}

// writeCSV dumps the current report's per-experiment wall/event figures.
func writeCSV(path string, r *benchReport) error {
	var sb strings.Builder
	sb.WriteString("id,wall_ms,sim_events,events_per_sec,fast_dispatches,slow_dispatches\n")
	for _, e := range r.Experiments {
		fmt.Fprintf(&sb, "%s,%.3f,%d,%.0f,%d,%d\n",
			e.ID, e.WallMS, e.SimEvents, e.EventsPerSec, e.FastDispatches, e.SlowDispatches)
	}
	fmt.Fprintf(&sb, "total,%.3f,,%.0f,,\n", r.TotalWallMS, aggregateEPS(r))
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// filterOnly narrows a report to the named experiment id.
func filterOnly(r *benchReport, id, path string) (*benchReport, error) {
	for _, e := range r.Experiments {
		if e.ID == id {
			out := *r
			out.Experiments = []expStats{e}
			return &out, nil
		}
	}
	return nil, fmt.Errorf("%s: no experiment %q in report", path, id)
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	epsTol := fs.Float64("eps-tolerance", 0.10, "max allowed fractional regression of aggregate events_per_sec vs baseline (<=0 disables the gate)")
	csvPath := fs.String("csv", "", "write the current report's per-experiment wall/events CSV to this file")
	only := fs.String("only", "", "compare just this experiment id (skips the whole-run throughput gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-eps-tolerance frac] [-csv out.csv] [-only exp] <baseline.json> <current.json>")
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	if *only != "" {
		if base, err = filterOnly(base, *only, fs.Arg(0)); err != nil {
			return err
		}
		if cur, err = filterOnly(cur, *only, fs.Arg(1)); err != nil {
			return err
		}
		// One experiment's wall share of a full run says nothing about
		// throughput; only the strict virtual-time fields are comparable.
		*epsTol = 0
	}
	args = []string{fs.Arg(0), fs.Arg(1)}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, cur); err != nil {
			return err
		}
	}

	var bad []string
	strict := func(ok bool, format string, a ...any) {
		if !ok {
			bad = append(bad, fmt.Sprintf(format, a...))
		}
	}
	strict(base.Seed == cur.Seed, "seed: baseline %d, current %d", base.Seed, cur.Seed)
	strict(base.Scale == cur.Scale, "scale: baseline %q, current %q", base.Scale, cur.Scale)

	var baseIDs, curIDs []string
	for _, e := range base.Experiments {
		baseIDs = append(baseIDs, e.ID)
	}
	for _, e := range cur.Experiments {
		curIDs = append(curIDs, e.ID)
	}
	if strings.Join(baseIDs, " ") != strings.Join(curIDs, " ") {
		strict(false, "experiment set: baseline [%s], current [%s]",
			strings.Join(baseIDs, " "), strings.Join(curIDs, " "))
	} else {
		for i := range base.Experiments {
			b, c := base.Experiments[i], cur.Experiments[i]
			if b.Report != c.Report {
				line, lb, lc := firstLineDiff(b.Report, c.Report)
				strict(false, "%s: report diverges at line %d:\n  baseline: %s\n  current:  %s",
					b.ID, line, lb, lc)
			}
			cmp := func(name string, vb, vc int64) {
				strict(vb == vc, "%s: %s: baseline %d, current %d", b.ID, name, vb, vc)
			}
			cmp("sim_events", b.SimEvents, c.SimEvents)
			cmp("cqes", b.CQEs, c.CQEs)
			cmp("messages", b.Messages, c.Messages)
			cmp("wire_bytes", b.WireBytes, c.WireBytes)
			cmp("device_gets", b.DeviceGets, c.DeviceGets)
			cmp("device_puts", b.DevicePuts, c.DevicePuts)
			cmp("device_bytes_demand", b.DeviceBytesDemand, c.DeviceBytesDemand)
			cmp("kernel_gets", b.KernelGets, c.KernelGets)
			cmp("fabric_builds", b.FabricBuilds, c.FabricBuilds)
		}
	}

	// Throughput gate: aggregate events/sec with a tolerance band.
	baseEPS, curEPS := aggregateEPS(base), aggregateEPS(cur)
	if baseEPS > 0 && curEPS > 0 {
		delta := curEPS/baseEPS - 1
		fmt.Printf("throughput: aggregate events_per_sec %.0f -> %.0f (%+.1f%%)\n",
			baseEPS, curEPS, delta*100)
		if *epsTol > 0 && delta < -*epsTol {
			strict(false, "aggregate events_per_sec regressed %.1f%% (limit %.0f%%): baseline %.0f, current %.0f",
				-delta*100, *epsTol*100, baseEPS, curEPS)
		}
	}

	// Advisory: host-dependent numbers, printed for the log only.
	fmt.Printf("advisory: total wall %.1fms -> %.1fms (procs %d -> %d, gomaxprocs %d -> %d)\n",
		base.TotalWallMS, cur.TotalWallMS, base.Procs, cur.Procs, base.GoMaxProcs, cur.GoMaxProcs)
	if len(base.Experiments) == len(cur.Experiments) {
		for i := range base.Experiments {
			b, c := base.Experiments[i], cur.Experiments[i]
			if b.ID != c.ID {
				continue
			}
			fmt.Printf("advisory: %-15s wall %8.1fms -> %8.1fms  fast/slow %d/%d -> %d/%d  reuse dev %d/%d -> %d/%d  kern %d/%d -> %d/%d  fab %d/%d -> %d/%d\n",
				b.ID, b.WallMS, c.WallMS,
				b.FastDispatches, b.SlowDispatches, c.FastDispatches, c.SlowDispatches,
				b.DeviceReused, b.DeviceGets, c.DeviceReused, c.DeviceGets,
				b.KernelReused, b.KernelGets, c.KernelReused, c.KernelGets,
				b.FabricReused, b.FabricBuilds, c.FabricReused, c.FabricBuilds)
		}
	}

	if len(bad) > 0 {
		fmt.Printf("benchdiff: %d strict mismatch(es) between %s and %s:\n", len(bad), args[0], args[1])
		for _, m := range bad {
			fmt.Println("  " + m)
		}
		return fmt.Errorf("virtual-time behaviour changed; if intentional, run ./ci.sh -update-baseline and commit the new BENCH_baseline.json")
	}
	fmt.Println("benchdiff: strict fields identical")
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
