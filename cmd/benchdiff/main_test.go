package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name string, r benchReport) string {
	t.Helper()
	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sample() benchReport {
	return benchReport{
		Seed: 1, Scale: "quick", Procs: 1, GoMaxProcs: 1, TotalWallMS: 100,
		Experiments: []expStats{{
			ID: "fig8a", Report: "== fig8a ==\np50 1.2us\n",
			WallMS: 40, SimEvents: 1000, CQEs: 50, Messages: 60, WireBytes: 4096,
			EventsPerSec: 25000, DeviceGets: 4, DevicePuts: 4, DeviceReused: 2,
			DeviceBytesDemand: 1 << 20, KernelGets: 4, KernelReused: 3,
			FabricBuilds: 4, FabricReused: 3,
		}},
	}
}

func TestIdenticalReportsPass(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", sample())
	b := writeReport(t, dir, "b.json", sample())
	if err := run([]string{a, b}); err != nil {
		t.Fatalf("identical reports rejected: %v", err)
	}
}

func TestAdvisoryOnlyChangesPass(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", sample())
	cur := sample()
	// Everything host-dependent moves; virtual time does not.
	cur.Procs, cur.GoMaxProcs, cur.TotalWallMS = 8, 8, 20
	cur.Experiments[0].WallMS = 5
	cur.Experiments[0].EventsPerSec = 200000
	cur.Experiments[0].DeviceReused = 0
	cur.Experiments[0].KernelReused = 0
	cur.Experiments[0].FabricReused = 0
	b := writeReport(t, dir, "b.json", cur)
	if err := run([]string{a, b}); err != nil {
		t.Fatalf("advisory-only drift rejected: %v", err)
	}
}

func TestReportTextMismatchFails(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", sample())
	cur := sample()
	cur.Experiments[0].Report = "== fig8a ==\np50 1.3us\n"
	b := writeReport(t, dir, "b.json", cur)
	if err := run([]string{a, b}); err == nil {
		t.Fatal("changed report text accepted")
	}
}

func TestStrictCounterMismatchFails(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", sample())
	cur := sample()
	cur.Experiments[0].SimEvents++
	b := writeReport(t, dir, "b.json", cur)
	if err := run([]string{a, b}); err == nil {
		t.Fatal("changed sim_events accepted")
	}
}

func TestExperimentSetMismatchFails(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", sample())
	cur := sample()
	cur.Experiments[0].ID = "fig8b"
	b := writeReport(t, dir, "b.json", cur)
	if err := run([]string{a, b}); err == nil {
		t.Fatal("changed experiment set accepted")
	}
}

func TestSeedMismatchFails(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", sample())
	cur := sample()
	cur.Seed = 2
	b := writeReport(t, dir, "b.json", cur)
	if err := run([]string{a, b}); err == nil {
		t.Fatal("changed seed accepted")
	}
}

// multiSample is a two-experiment baseline for the -only filter tests.
func multiSample() benchReport {
	r := sample()
	second := r.Experiments[0]
	second.ID = "shards"
	second.Report = "== shards ==\np99 9.9us\n"
	second.SimEvents = 2000
	r.Experiments = append(r.Experiments, second)
	return r
}

func TestOnlyFilterComparesSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", multiSample())
	// Current run regenerated just the shards experiment: the other
	// experiment's counters diverge wildly but must be ignored.
	cur := multiSample()
	cur.Experiments[0].SimEvents = 1
	cur.Experiments[0].Report = "garbage"
	cur.Experiments = cur.Experiments[:2]
	cur.TotalWallMS = 7 // single-exp run: throughput gate must be off
	b := writeReport(t, dir, "b.json", cur)
	if err := run([]string{"-only", "shards", a, b}); err != nil {
		t.Fatalf("-only shards compared unrelated experiments: %v", err)
	}
	// The filtered experiment itself still gates strictly.
	cur.Experiments[1].SimEvents++
	b = writeReport(t, dir, "b.json", cur)
	if err := run([]string{"-only", "shards", a, b}); err == nil {
		t.Fatal("-only missed a strict mismatch in the selected experiment")
	}
}

func TestOnlyFilterUnknownExperiment(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", multiSample())
	b := writeReport(t, dir, "b.json", multiSample())
	if err := run([]string{"-only", "nope", a, b}); err == nil {
		t.Fatal("unknown -only id accepted")
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(path, []byte(`{"seed":1,"allocs":5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeReport(t, dir, "good.json", sample())
	if err := run([]string{path, good}); err == nil {
		t.Fatal("stale schema accepted")
	}
}

func TestUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing args accepted")
	}
}

// TestCommittedBaselineAgainstItself runs the real gate input through the
// tool: the committed baseline must diff cleanly against itself, proving
// the schema here matches cmd/hyperloop-bench's.
func TestCommittedBaselineAgainstItself(t *testing.T) {
	base := filepath.Join("..", "..", "BENCH_baseline.json")
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	if err := run([]string{base, base}); err != nil {
		t.Fatalf("baseline does not diff cleanly against itself: %v", err)
	}
}
