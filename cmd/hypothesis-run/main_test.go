package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"hyperloop/internal/hypotheses"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run([]string{"-run", "no-such-claim"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunSingleScenarioJSONAndFindings(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hypo.json")
	fdir := filepath.Join(dir, "findings")
	if err := run([]string{"-run", "multi-failure", "-seed", "7", "-json", path, "-findings", fdir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if rep.Seed != 7 || len(rep.Experiments) != 1 || rep.Experiments[0].ID != "multi-failure" {
		t.Fatalf("report = %+v, want one multi-failure entry at seed 7", rep)
	}
	e := rep.Experiments[0]
	if e.SimEvents <= 0 || e.CQEs <= 0 || e.Messages <= 0 || e.WireBytes <= 0 {
		t.Fatalf("counters not populated: %+v", e)
	}
	if !strings.Contains(e.Report, "Verdict: VALIDATED") {
		t.Fatalf("findings not embedded in -json entry:\n%s", e.Report)
	}
	md, err := os.ReadFile(filepath.Join(fdir, "multi-failure", "FINDINGS.md"))
	if err != nil {
		t.Fatalf("findings artifact: %v", err)
	}
	if string(md) != e.Report {
		t.Fatal("FINDINGS.md differs from the -json report text")
	}
}

// TestCountersDeterministic reruns one scenario via the CLI and demands
// byte-identical strict fields — the property the HYPO baseline gate pins.
func TestCountersDeterministic(t *testing.T) {
	dir := t.TempDir()
	strip := func(path string) benchReport {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var r benchReport
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		for i := range r.Experiments {
			r.Experiments[i].WallMS = 0
			r.Experiments[i].EventsPerSec = 0
		}
		r.TotalWallMS = 0
		return r
	}
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := run([]string{"-run", "flush-storm", "-seed", "42", "-json", a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "flush-storm", "-seed", "42", "-json", b}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strip(a), strip(b)) {
		t.Fatal("strict fields differ across identical CLI runs")
	}
}

// jsonKeys returns the sorted key set of a JSON object.
func jsonKeys(t *testing.T, raw []byte) []string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("not a JSON object: %v", err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestBaselineMatchesSchema fails when the committed HYPO_baseline.json has
// gone stale relative to the -json schema or the scenario catalog.
// Refresh with:
//
//	go run ./cmd/hypothesis-run -run all -scale quick -seed 1 -json HYPO_baseline.json
func TestBaselineMatchesSchema(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "HYPO_baseline.json"))
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep benchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("HYPO_baseline.json no longer decodes against benchReport — regenerate it: %v", err)
	}
	if len(rep.Experiments) == 0 {
		t.Fatal("baseline has no scenarios")
	}
	remarshal, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := jsonKeys(t, data), jsonKeys(t, remarshal); !reflect.DeepEqual(got, want) {
		t.Fatalf("baseline top-level fields %v, schema has %v — regenerate it", got, want)
	}
	var fileExps, schemaExps struct {
		Experiments []json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(data, &fileExps); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(remarshal, &schemaExps); err != nil {
		t.Fatal(err)
	}
	if got, want := jsonKeys(t, fileExps.Experiments[0]), jsonKeys(t, schemaExps.Experiments[0]); !reflect.DeepEqual(got, want) {
		t.Fatalf("baseline scenario fields %v, schema has %v — regenerate it", got, want)
	}
	// The scenario list must match the catalog order exactly.
	var ids []string
	for _, e := range rep.Experiments {
		ids = append(ids, e.ID)
	}
	if want := hypotheses.CatalogOrder(); !reflect.DeepEqual(ids, want) {
		t.Fatalf("baseline covers %v\ncatalog has  %v — regenerate it", ids, want)
	}
	if rep.Scale != "quick" || rep.Seed != 1 {
		t.Fatalf("baseline must be -scale quick -seed 1, got scale=%q seed=%d", rep.Scale, rep.Seed)
	}
	for _, e := range rep.Experiments {
		if e.WallMS <= 0 || e.SimEvents <= 0 || !strings.Contains(e.Report, "Verdict: VALIDATED") {
			t.Fatalf("scenario %s has empty or refuted stats: %+v", e.ID, e)
		}
	}
}

// TestCommittedFindingsMatch regenerates every scenario at the baseline
// seed and demands the committed hypotheses/<id>/FINDINGS.md artifacts
// match byte for byte — the same staleness bar the baseline JSON gets.
func TestCommittedFindingsMatch(t *testing.T) {
	for _, id := range hypotheses.CatalogOrder() {
		r, err := hypotheses.Run(id, 1, hypotheses.Quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		path := filepath.Join("..", "..", "hypotheses", id, "FINDINGS.md")
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: committed findings missing — regenerate with "+
				"`go run ./cmd/hypothesis-run -run all -findings hypotheses`: %v", id, err)
		}
		if string(committed) != r.Findings() {
			t.Errorf("%s: committed FINDINGS.md is stale — regenerate with "+
				"`go run ./cmd/hypothesis-run -run all -findings hypotheses`", id)
		}
	}
}
