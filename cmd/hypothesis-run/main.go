// Command hypothesis-run executes the claim-validating scenario catalog
// (internal/hypotheses) and renders each scenario's FINDINGS.md evidence.
//
// Usage:
//
//	hypothesis-run -list
//	hypothesis-run -run partition-failover
//	hypothesis-run -run all -seed 42 -scale quick
//	hypothesis-run -run all -findings hypotheses -json HYPO_baseline.json
//
// A refuted claim (any failed check) exits 1 after rendering every
// requested scenario, so CI sees the full evidence, not just the first
// failure. The -json report reuses the hyperloop-bench schema — strict
// virtual-time counters per scenario — so cmd/benchdiff gates the catalog
// against the committed HYPO_baseline.json exactly like the bench gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hyperloop/internal/hypotheses"
)

// expStats mirrors the per-experiment object of hyperloop-bench -json, so
// cmd/benchdiff (which decodes with DisallowUnknownFields) accepts the
// catalog report unchanged. Fields the catalog does not track — the pool
// and dispatch splits — stay zero on both sides of a diff and never trip
// the gate; drops and dups are strict anyway because they render into the
// report text. Kept in sync by TestBaselineMatchesSchema.
type expStats struct {
	ID     string `json:"id"`
	Report string `json:"report"`

	WallMS       float64 `json:"wall_ms"`
	SimEvents    int64   `json:"sim_events"`
	CQEs         int64   `json:"cqes"`
	Messages     int64   `json:"messages"`
	WireBytes    int64   `json:"wire_bytes"`
	EventsPerSec float64 `json:"events_per_sec"`

	FastDispatches int64 `json:"fast_dispatches"`
	SlowDispatches int64 `json:"slow_dispatches"`

	DeviceGets        int64 `json:"device_gets"`
	DevicePuts        int64 `json:"device_puts"`
	DeviceFresh       int64 `json:"device_fresh"`
	DeviceReused      int64 `json:"device_reused"`
	DeviceBytesZeroed int64 `json:"device_bytes_zeroed"`
	DeviceBytesDemand int64 `json:"device_bytes_demand"`
	KernelGets        int64 `json:"kernel_gets"`
	KernelFresh       int64 `json:"kernel_fresh"`
	KernelReused      int64 `json:"kernel_reused"`
	FabricBuilds      int64 `json:"fabric_builds"`
	FabricReused      int64 `json:"fabric_reused"`
}

type benchReport struct {
	Seed        uint64     `json:"seed"`
	Scale       string     `json:"scale"`
	Procs       int        `json:"procs"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	Experiments []expStats `json:"experiments"`
	TotalWallMS float64    `json:"total_wall_ms"`
}

// errRefuted distinguishes a refuted claim (evidence rendered, exit 1)
// from infrastructure failures.
var errRefuted = fmt.Errorf("hypothesis refuted")

func run(args []string) error {
	fs := flag.NewFlagSet("hypothesis-run", flag.ContinueOnError)
	var (
		id       = fs.String("run", "all", "scenario id (see -list) or 'all'")
		seed     = fs.Uint64("seed", 1, "simulation seed (equal seeds reproduce runs exactly)")
		scale    = fs.String("scale", "quick", "run size: quick | full")
		list     = fs.Bool("list", false, "list scenarios and exit")
		jsonP    = fs.String("json", "", "write machine-readable counters to this file ('-' = stdout)")
		findings = fs.String("findings", "", "write each scenario's FINDINGS.md under <dir>/<id>/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sid := range hypotheses.CatalogOrder() {
			fmt.Printf("  %-20s %s\n", sid, hypotheses.Describe(sid))
		}
		return nil
	}
	sc, err := hypotheses.ParseScale(*scale)
	if err != nil {
		return err
	}
	ids := []string{*id}
	if *id == "all" {
		ids = hypotheses.CatalogOrder()
	}

	rep := benchReport{
		Seed: *seed, Scale: sc.String(),
		Procs: 1, GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	refuted := 0
	total := time.Now()
	for _, sid := range ids {
		start := time.Now()
		r, err := hypotheses.Run(sid, *seed, sc)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		text := r.Findings()
		fmt.Println(text)
		if !r.Passed() {
			refuted++
		}
		if *findings != "" {
			dir := filepath.Join(*findings, sid)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(dir, "FINDINGS.md"), []byte(text), 0o644); err != nil {
				return err
			}
		}
		c := r.Counters
		rep.Experiments = append(rep.Experiments, expStats{
			ID:           sid,
			Report:       text,
			WallMS:       float64(wall.Microseconds()) / 1000,
			SimEvents:    c.SimEvents,
			CQEs:         c.CQEs,
			Messages:     c.Messages,
			WireBytes:    c.WireBytes,
			EventsPerSec: float64(c.SimEvents) / wall.Seconds(),
		})
	}
	rep.TotalWallMS = float64(time.Since(total).Microseconds()) / 1000

	if *jsonP != "" {
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if *jsonP == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(*jsonP, out, 0o644); err != nil {
				return err
			}
			fmt.Printf("(counters written to %s)\n", *jsonP)
		}
	}
	if refuted > 0 {
		return fmt.Errorf("%w: %d of %d scenario(s) failed checks", errRefuted, refuted, len(ids))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hypothesis-run:", err)
		os.Exit(1)
	}
}
