package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-scale", "quick"}); err != nil {
		t.Fatalf("table3: %v", err)
	}
}
