package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"hyperloop/internal/experiments"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-scale", "quick"}); err != nil {
		t.Fatalf("table3: %v", err)
	}
}

func TestNegativeProcs(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-procs", "-1"}); err == nil {
		t.Fatal("negative -procs accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-exp", "abl-flush", "-procs", "2", "-json", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if rep.Procs != 2 {
		t.Fatalf("procs = %d, want 2", rep.Procs)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "abl-flush" {
		t.Fatalf("experiments = %+v, want one abl-flush entry", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.SimEvents <= 0 || e.WallMS <= 0 || e.EventsPerSec <= 0 {
		t.Fatalf("stats not populated: %+v", e)
	}
	if e.CQEs <= 0 || e.Messages <= 0 || e.WireBytes <= 0 {
		t.Fatalf("fabric counters not attributed: %+v", e)
	}
	if e.Report == "" {
		t.Fatal("rendered report missing from -json entry")
	}
}

// jsonKeys returns the sorted key set of a JSON object.
func jsonKeys(t *testing.T, raw []byte) []string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("not a JSON object: %v", err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestBaselineMatchesSchema fails when the committed BENCH_baseline.json has
// gone stale relative to the -json schema: fields the schema dropped, fields
// it gained that the file lacks, or an experiment set that no longer matches
// the registry. Refresh with:
//
//	go run ./cmd/hyperloop-bench -exp all -scale quick -seed 1 -procs 1 -json BENCH_baseline.json
func TestBaselineMatchesSchema(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	// Fields in the file that the schema dropped fail strict decoding.
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep benchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_baseline.json no longer decodes against benchReport — regenerate it: %v", err)
	}
	if len(rep.Experiments) == 0 {
		t.Fatal("baseline has no experiments")
	}
	// Fields the schema gained show up as a key-set mismatch against a
	// re-marshal of the decoded report.
	remarshal, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := jsonKeys(t, data), jsonKeys(t, remarshal); !reflect.DeepEqual(got, want) {
		t.Fatalf("baseline top-level fields %v, schema has %v — regenerate it", got, want)
	}
	var fileExps, schemaExps struct {
		Experiments []json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(data, &fileExps); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(remarshal, &schemaExps); err != nil {
		t.Fatal(err)
	}
	if got, want := jsonKeys(t, fileExps.Experiments[0]), jsonKeys(t, schemaExps.Experiments[0]); !reflect.DeepEqual(got, want) {
		t.Fatalf("baseline experiment fields %v, schema has %v — regenerate it", got, want)
	}
	// The experiment list must match the registry's paper order exactly.
	var ids []string
	for _, e := range rep.Experiments {
		ids = append(ids, e.ID)
	}
	if want := experiments.PaperOrder(); !reflect.DeepEqual(ids, want) {
		t.Fatalf("baseline covers %v\nregistry has  %v — regenerate it", ids, want)
	}
	// Light sanity on values so an interrupted regeneration can't be committed.
	if rep.Scale != "quick" || rep.Procs != 1 {
		t.Fatalf("baseline must be -scale quick -procs 1, got scale=%q procs=%d", rep.Scale, rep.Procs)
	}
	for _, e := range rep.Experiments {
		// table3 renders a static workload table; it schedules no trials.
		if e.WallMS <= 0 || e.Report == "" || (e.SimEvents == 0 && e.ID != "table3") {
			t.Fatalf("experiment %s has empty stats: %+v", e.ID, e)
		}
	}
}
