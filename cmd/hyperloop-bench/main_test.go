package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-scale", "quick"}); err != nil {
		t.Fatalf("table3: %v", err)
	}
}

func TestNegativeProcs(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-procs", "-1"}); err == nil {
		t.Fatal("negative -procs accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-exp", "abl-flush", "-procs", "2", "-json", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if rep.Procs != 2 {
		t.Fatalf("procs = %d, want 2", rep.Procs)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "abl-flush" {
		t.Fatalf("experiments = %+v, want one abl-flush entry", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.SimEvents <= 0 || e.WallMS <= 0 || e.EventsPerSec <= 0 {
		t.Fatalf("stats not populated: %+v", e)
	}
}
