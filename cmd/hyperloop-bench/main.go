// Command hyperloop-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hyperloop-bench -list
//	hyperloop-bench -exp fig8a
//	hyperloop-bench -exp all -scale full -seed 7
//	hyperloop-bench -exp all -procs 8 -json BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hyperloop/internal/experiments"
	"hyperloop/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hyperloop-bench:", err)
		os.Exit(1)
	}
}

// expStats is one experiment's entry in the -json report. The device_*
// and kernel_* fields are trial-arena counters (deltas over the
// experiment): device_bytes_zeroed vs device_bytes_demand shows how much
// setup zeroing the dirty-range reset avoided relative to fresh
// allocation per trial.
type expStats struct {
	ID           string  `json:"id"`
	WallMS       float64 `json:"wall_ms"`
	SimEvents    int64   `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs"`

	DeviceFresh       int64 `json:"device_fresh"`
	DeviceReused      int64 `json:"device_reused"`
	DeviceBytesZeroed int64 `json:"device_bytes_zeroed"`
	DeviceBytesDemand int64 `json:"device_bytes_demand"`
	KernelFresh       int64 `json:"kernel_fresh"`
	KernelReused      int64 `json:"kernel_reused"`
}

// benchReport is the -json output: enough to compare perf across commits.
type benchReport struct {
	Seed        uint64     `json:"seed"`
	Scale       string     `json:"scale"`
	Procs       int        `json:"procs"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	Experiments []expStats `json:"experiments"`
	TotalWallMS float64    `json:"total_wall_ms"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyperloop-bench", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		seed  = fs.Uint64("seed", 1, "simulation seed (equal seeds reproduce runs exactly)")
		scale = fs.String("scale", "quick", "run size: quick | full (paper-grade sample counts)")
		list  = fs.Bool("list", false, "list experiments and exit")
		procs = fs.Int("procs", 0, "concurrent trials per experiment (0 = GOMAXPROCS); results are identical at any setting")
		jsonP = fs.String("json", "", "write machine-readable perf stats to this file ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.PaperOrder() {
			fmt.Printf("  %-10s %s\n", id, experiments.Describe(id))
		}
		return nil
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}
	if *procs < 0 {
		return fmt.Errorf("-procs must be >= 0, got %d", *procs)
	}
	prev := experiments.SetParallelism(*procs)
	defer experiments.SetParallelism(prev)

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.PaperOrder()
	}
	bench := benchReport{
		Seed: *seed, Scale: *scale,
		Procs: experiments.Parallelism(), GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	total := time.Now()
	for _, id := range ids {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocs0, events0 := ms.Mallocs, sim.TotalEvents()
		arena0 := experiments.Stats()
		start := time.Now()
		report, err := experiments.Run(id, *seed, sc)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		events := sim.TotalEvents() - events0
		arena := experiments.Stats()
		bench.Experiments = append(bench.Experiments, expStats{
			ID:           id,
			WallMS:       float64(wall.Microseconds()) / 1000,
			SimEvents:    events,
			EventsPerSec: float64(events) / wall.Seconds(),
			Allocs:       ms.Mallocs - allocs0,

			DeviceFresh:       arena.DeviceFresh - arena0.DeviceFresh,
			DeviceReused:      arena.DeviceReused - arena0.DeviceReused,
			DeviceBytesZeroed: arena.DeviceBytesZeroed - arena0.DeviceBytesZeroed,
			DeviceBytesDemand: arena.DeviceBytesDemand - arena0.DeviceBytesDemand,
			KernelFresh:       arena.KernelFresh - arena0.KernelFresh,
			KernelReused:      arena.KernelReused - arena0.KernelReused,
		})
		fmt.Println(report)
		fmt.Printf("(%s regenerated in %v wall time)\n\n", id, wall.Round(time.Millisecond))
	}
	bench.TotalWallMS = float64(time.Since(total).Microseconds()) / 1000

	if *jsonP != "" {
		out, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if *jsonP == "-" {
			_, err = os.Stdout.Write(out)
			return err
		}
		if err := os.WriteFile(*jsonP, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("(perf stats written to %s)\n", *jsonP)
	}
	return nil
}
