// Command hyperloop-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hyperloop-bench -list
//	hyperloop-bench -exp fig8a
//	hyperloop-bench -exp all -scale full -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hyperloop/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hyperloop-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyperloop-bench", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		seed  = fs.Uint64("seed", 1, "simulation seed (equal seeds reproduce runs exactly)")
		scale = fs.String("scale", "quick", "run size: quick | full (paper-grade sample counts)")
		list  = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.PaperOrder() {
			fmt.Printf("  %-10s %s\n", id, experiments.Describe(id))
		}
		return nil
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.PaperOrder()
	}
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(id, *seed, sc)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(report)
		fmt.Printf("(%s regenerated in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
