// Command hyperloop-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hyperloop-bench -list
//	hyperloop-bench -exp fig8a
//	hyperloop-bench -exp all -scale full -seed 7
//	hyperloop-bench -exp all -procs 8 -json BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hyperloop/internal/experiments"
	"hyperloop/internal/sim"
)

// loadCostHints reads a previous -json report and returns each
// experiment's wall_ms as a scheduling cost hint.
func loadCostHints(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	hints := make(map[string]float64, len(rep.Experiments))
	for _, e := range rep.Experiments {
		hints[e.ID] = e.WallMS
	}
	return hints, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hyperloop-bench:", err)
		os.Exit(1)
	}
}

// expStats is one experiment's entry in the -json report, filled from the
// experiment's own StatSink — counters its trials attributed locally, so
// they read the same whether experiments ran serially or overlapped.
//
// Report and the sink's deterministic counters (sim_events, cqes,
// messages, wire_bytes, device_gets/puts, device_bytes_demand,
// kernel_gets, fabric_builds) are byte-identical at any -procs setting;
// the CI regression gate (cmd/benchdiff) diffs them exactly. Wall-clock
// rates and the pools' fresh/reused splits depend on host scheduling and
// are advisory.
type expStats struct {
	ID     string `json:"id"`
	Report string `json:"report"`

	WallMS       float64 `json:"wall_ms"`
	SimEvents    int64   `json:"sim_events"`
	CQEs         int64   `json:"cqes"`
	Messages     int64   `json:"messages"`
	WireBytes    int64   `json:"wire_bytes"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Fiber control-transfer split: inline fast-path starts vs classic
	// goroutine rendezvous. Advisory in diffs — -fastpath=off moves the
	// whole split to slow.
	FastDispatches int64 `json:"fast_dispatches"`
	SlowDispatches int64 `json:"slow_dispatches"`

	DeviceGets        int64 `json:"device_gets"`
	DevicePuts        int64 `json:"device_puts"`
	DeviceFresh       int64 `json:"device_fresh"`
	DeviceReused      int64 `json:"device_reused"`
	DeviceBytesZeroed int64 `json:"device_bytes_zeroed"`
	DeviceBytesDemand int64 `json:"device_bytes_demand"`
	KernelGets        int64 `json:"kernel_gets"`
	KernelFresh       int64 `json:"kernel_fresh"`
	KernelReused      int64 `json:"kernel_reused"`
	FabricBuilds      int64 `json:"fabric_builds"`
	FabricReused      int64 `json:"fabric_reused"`
}

// benchReport is the -json output: enough to compare perf across commits.
type benchReport struct {
	Seed        uint64     `json:"seed"`
	Scale       string     `json:"scale"`
	Procs       int        `json:"procs"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	Experiments []expStats `json:"experiments"`
	TotalWallMS float64    `json:"total_wall_ms"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyperloop-bench", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		seed  = fs.Uint64("seed", 1, "simulation seed (equal seeds reproduce runs exactly)")
		scale = fs.String("scale", "quick", "run size: quick | full (paper-grade sample counts)")
		list  = fs.Bool("list", false, "list experiments and exit")
		procs = fs.Int("procs", 0, "concurrent trials across all experiments (0 = GOMAXPROCS); results are identical at any setting")
		jsonP = fs.String("json", "", "write machine-readable perf stats to this file ('-' = stdout)")
		prof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this file")
		fast  = fs.String("fastpath", "on", "direct-dispatch fiber fast path: on | off (results are identical either way)")
		costs = fs.String("costs", "BENCH_baseline.json", "JSON report whose wall_ms seeds the critical-path-first schedule ('' = none; a missing file is ignored)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.PaperOrder() {
			fmt.Printf("  %-10s %s\n", id, experiments.Describe(id))
		}
		return nil
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}
	if *procs < 0 {
		return fmt.Errorf("-procs must be >= 0, got %d", *procs)
	}
	switch *fast {
	case "on":
		sim.SetFastPath(true)
	case "off":
		sim.SetFastPath(false)
	default:
		return fmt.Errorf("-fastpath must be on or off, got %q", *fast)
	}
	prev := experiments.SetParallelism(*procs)
	defer experiments.SetParallelism(prev)
	if *costs != "" {
		if hints, err := loadCostHints(*costs); err == nil {
			defer experiments.SetCostHints(experiments.SetCostHints(hints))
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("-costs %s: %w", *costs, err)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.PaperOrder()
	}
	bench := benchReport{
		Seed: *seed, Scale: *scale,
		Procs: experiments.Parallelism(), GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if *prof != "" {
		pf, err := os.Create(*prof)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	total := time.Now()
	results, err := experiments.RunAll(ids, *seed, sc)
	if err != nil {
		return err
	}
	bench.TotalWallMS = float64(time.Since(total).Microseconds()) / 1000
	for _, r := range results {
		s := r.Stats
		bench.Experiments = append(bench.Experiments, expStats{
			ID:           r.ID,
			Report:       r.Report.String(),
			WallMS:       float64(r.Wall.Microseconds()) / 1000,
			SimEvents:    s.SimEvents,
			CQEs:         s.CQEs,
			Messages:     s.Messages,
			WireBytes:    s.WireBytes,
			EventsPerSec: float64(s.SimEvents) / r.Wall.Seconds(),

			FastDispatches: s.FastDispatches,
			SlowDispatches: s.SlowDispatches,

			DeviceGets:        s.DeviceGets,
			DevicePuts:        s.DevicePuts,
			DeviceFresh:       s.DeviceFresh,
			DeviceReused:      s.DeviceReused,
			DeviceBytesZeroed: s.DeviceBytesZeroed,
			DeviceBytesDemand: s.DeviceBytesDemand,
			KernelGets:        s.KernelGets,
			KernelFresh:       s.KernelFresh,
			KernelReused:      s.KernelReused,
			FabricBuilds:      s.FabricBuilds,
			FabricReused:      s.FabricReused,
		})
		fmt.Println(r.Report)
		fmt.Printf("(%s regenerated in %v wall time)\n\n", r.ID, r.Wall.Round(time.Millisecond))
	}

	if *jsonP != "" {
		out, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if *jsonP == "-" {
			_, err = os.Stdout.Write(out)
			return err
		}
		if err := os.WriteFile(*jsonP, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("(perf stats written to %s)\n", *jsonP)
	}
	return nil
}
