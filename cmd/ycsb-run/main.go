// Command ycsb-run drives a YCSB workload against the replicated KV store
// or document store over a chosen replication backend.
//
// Usage:
//
//	ycsb-run -db kv -workload A -backend hyperloop -records 200 -ops 2000
//	ycsb-run -db doc -workload B -backend naive-event -load
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	root "hyperloop"
	"hyperloop/internal/docstore"
	"hyperloop/internal/kvstore"
	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
	"hyperloop/internal/ycsb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ycsb-run:", err)
		os.Exit(1)
	}
}

// kvDB adapts the KV store to the YCSB driver.
type kvDB struct{ db *kvstore.DB }

func (a kvDB) Read(f *sim.Fiber, key int) error {
	if _, ok := a.db.Get([]byte(ycsb.Key(key))); !ok {
		return fmt.Errorf("missing key %d", key)
	}
	return nil
}
func (a kvDB) Update(f *sim.Fiber, key int, v []byte) error {
	return a.db.Put(f, []byte(ycsb.Key(key)), v)
}
func (a kvDB) Insert(f *sim.Fiber, key int, v []byte) error {
	return a.db.Put(f, []byte(ycsb.Key(key)), v)
}
func (a kvDB) Scan(f *sim.Fiber, start, count int) error {
	a.db.Scan([]byte(ycsb.Key(start)), count)
	return nil
}
func (a kvDB) ReadModifyWrite(f *sim.Fiber, key int, v []byte) error {
	if err := a.Read(f, key); err != nil {
		return err
	}
	return a.Update(f, key, v)
}

// docDB adapts the document store.
type docDB struct{ st *docstore.Store }

func (a docDB) Read(f *sim.Fiber, key int) error {
	_, err := a.st.FindID("usertable", ycsb.Key(key))
	return err
}
func (a docDB) Update(f *sim.Fiber, key int, v []byte) error {
	return a.st.Update(f, "usertable", ycsb.Key(key), docstore.Doc{"field0": string(v)})
}
func (a docDB) Insert(f *sim.Fiber, key int, v []byte) error {
	return a.st.Insert(f, "usertable", docstore.Doc{"_id": ycsb.Key(key), "field0": string(v)})
}
func (a docDB) Scan(f *sim.Fiber, start, count int) error {
	_, err := a.st.Scan("usertable", ycsb.Key(start), count)
	return err
}
func (a docDB) ReadModifyWrite(f *sim.Fiber, key int, v []byte) error {
	if err := a.Read(f, key); err != nil {
		return err
	}
	return a.Update(f, key, v)
}

// shardDB adapts the shard router: every key lives on one of N
// independent replication groups, read-modify-writes go through the
// cross-shard transaction path, and scans degrade to point gets (hash
// sharding scatters adjacent keys).
type shardDB struct{ r *root.ShardRouter }

func (a shardDB) Read(f *sim.Fiber, key int) error {
	v, err := a.r.Get(uint64(key))
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("missing key %d", key)
	}
	return nil
}
func (a shardDB) Update(f *sim.Fiber, key int, v []byte) error {
	return a.r.Put(f, uint64(key), v)
}
func (a shardDB) Insert(f *sim.Fiber, key int, v []byte) error {
	return a.r.Put(f, uint64(key), v)
}
func (a shardDB) Scan(f *sim.Fiber, start, count int) error {
	for i := 0; i < count; i++ {
		if _, err := a.r.Get(uint64(start + i)); err != nil {
			return err
		}
	}
	return nil
}
func (a shardDB) ReadModifyWrite(f *sim.Fiber, key int, v []byte) error {
	if err := a.Read(f, key); err != nil {
		return err
	}
	return a.r.Txn(f, []root.ShardWrite{{Key: uint64(key), Data: v}})
}

// shardProtocol maps the legacy backend names onto registry protocols for
// sharded runs.
func shardProtocol(backend string) string {
	switch backend {
	case "hyperloop":
		return "chain"
	case "naive-event", "naive-polling", "naive-pinned":
		return "naive"
	default:
		return backend
	}
}

// run executes one workload and prints the latency table to out; split
// from main so tests can drive flag combinations and inspect the output.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ycsb-run", flag.ContinueOnError)
	var (
		dbKind   = fs.String("db", "kv", "store under test: kv | doc")
		workload = fs.String("workload", "A", "YCSB workload: A | B | D | E | F")
		backend  = fs.String("backend", "hyperloop", "replication backend: hyperloop | naive-event | naive-polling | naive-pinned, or a registered protocol ("+strings.Join(root.Protocols(), " | ")+")")
		records  = fs.Int("records", 200, "preloaded record count")
		ops      = fs.Int("ops", 2000, "operation count")
		valSize  = fs.Int("value", 1024, "value size in bytes")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		replicas = fs.Int("replicas", 3, "replica chain length")
		load     = fs.Bool("load", true, "apply multi-tenant CPU load on replicas")
		shards   = fs.Int("shards", 1, "partition the keyspace across N independent replication groups (>1 routes ops through the shard router; -db is ignored)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := ycsb.ByName(*workload)
	if err != nil {
		return err
	}

	var (
		db      ycsb.DB
		runSim  func(func(f *root.Fiber) error) error
		storeID string
	)
	if *shards > 1 {
		// Enough slots for every preloaded record plus worst-case inserts,
		// with hash-imbalance headroom.
		slots := (*records+*ops)*2/(*shards) + 32
		sc, err := root.NewShardedCluster(root.ShardedClusterConfig{
			Seed:             *seed,
			Shards:           *shards,
			ReplicasPerShard: *replicas,
			Protocol:         shardProtocol(*backend),
			Routing: root.ShardRoutingConfig{
				SlotSize:      *valSize,
				SlotsPerShard: slots,
				LogSize:       4*(*valSize) + 1024,
			},
		})
		if err != nil {
			return err
		}
		defer sc.Close()
		db = shardDB{r: sc.Router()}
		runSim = sc.Run
		storeID = fmt.Sprintf("sharded×%d", *shards)
	} else {
		cluster, err := root.NewCluster(root.ClusterConfig{
			Seed:            *seed,
			Replicas:        *replicas,
			MultiTenantLoad: *load,
			DeviceSize:      64 << 20,
		})
		if err != nil {
			return err
		}
		runSim = cluster.Run
		storeID = *dbKind
		switch *dbKind {
		case "kv":
			kcfg := kvstore.DefaultConfig()
			group, err := makeGroup(cluster, *backend, kvstore.MirrorSizeFor(kcfg))
			if err != nil {
				return err
			}
			kv, err := kvstore.Open(group, kcfg)
			if err != nil {
				return err
			}
			db = kvDB{db: kv}
		case "doc":
			dcfg := docstore.DefaultConfig()
			group, err := makeGroup(cluster, *backend, docstore.MirrorSizeFor(dcfg))
			if err != nil {
				return err
			}
			st, err := docstore.Open(group, dcfg)
			if err != nil {
				return err
			}
			db = docDB{st: st}
		default:
			return fmt.Errorf("unknown -db %q (kv|doc)", *dbKind)
		}
	}

	runner := ycsb.NewRunner(ycsb.RunnerConfig{
		Workload:    w,
		RecordCount: *records,
		OpCount:     *ops,
		ValueSize:   *valSize,
		Seed:        *seed,
	})
	var result *ycsb.Result
	err = runSim(func(f *root.Fiber) error {
		if err := runner.Load(f, db); err != nil {
			return err
		}
		var rerr error
		result, rerr = runner.Run(f, db)
		return rerr
	})
	if err != nil {
		return err
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("YCSB-%s on %s store, %s backend (%d records, %d ops)",
			w.Name, storeID, *backend, *records, *ops),
		"operation", "count", "avg", "p95", "p99", "max")
	for _, op := range []ycsb.OpType{ycsb.OpRead, ycsb.OpUpdate, ycsb.OpInsert, ycsb.OpModify, ycsb.OpScan} {
		h := result.ByOp[op]
		if h.Count() == 0 {
			continue
		}
		s := h.Summarize()
		tbl.AddRow(op.String(), s.Count, s.Mean, s.P95, s.P99, s.Max)
	}
	s := result.Overall.Summarize()
	tbl.AddRow("overall", s.Count, s.Mean, s.P95, s.P99, s.Max)
	fmt.Fprintln(out, tbl)
	if result.Errors > 0 {
		fmt.Fprintf(out, "errors: %d\n", result.Errors)
	}
	return nil
}

func makeGroup(c *root.Cluster, backend string, mirror int) (interface {
	GroupSize() int
	WriteLocal(off int, data []byte) error
	ReadLocal(off, n int) ([]byte, error)
	Write(f *sim.Fiber, off, size int, durable bool) error
	Memcpy(f *sim.Fiber, src, dst, size int, durable bool) error
	CAS(f *sim.Fiber, off int, old, new uint64, exec []bool) ([]uint64, error)
	Flush(f *sim.Fiber, off, size int) error
}, error) {
	switch backend {
	case "hyperloop":
		return c.NewGroup(mirror)
	case "naive-event":
		return c.NewNaiveGroup(mirror, root.NaiveEvent)
	case "naive-polling":
		return c.NewNaiveGroup(mirror, root.NaivePolling)
	case "naive-pinned":
		return c.NewNaiveGroup(mirror, root.NaivePinned)
	default:
		// Any registered replication protocol works as a backend; the
		// legacy names above predate the protocol registry.
		g, err := c.NewProtocolGroup(backend, mirror)
		if err != nil {
			return nil, fmt.Errorf("unknown backend %q: %v", backend, err)
		}
		return g, nil
	}
}
