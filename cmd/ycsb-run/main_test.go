package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-nope"}, "flag provided but not defined"},
		{"bad db", []string{"-db", "graph"}, `unknown -db "graph"`},
		{"bad backend", []string{"-backend", "tcp"}, `unknown backend "tcp"`},
		{"bad workload", []string{"-workload", "Z"}, "unknown workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// smokeArgs keeps the simulated runs small enough for the test suite.
func smokeArgs(extra ...string) []string {
	return append([]string{"-records", "40", "-ops", "120", "-value", "128", "-load=false"}, extra...)
}

func TestRunKVSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(smokeArgs("-db", "kv", "-workload", "A"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	assertTableShape(t, out.String(), "YCSB-A on kv store, hyperloop backend (40 records, 120 ops)")
}

func TestRunShardedSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(smokeArgs("-shards", "8", "-workload", "A"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	assertTableShape(t, out.String(), "YCSB-A on sharded×8 store, hyperloop backend (40 records, 120 ops)")
}

func TestRunShardedTxnPath(t *testing.T) {
	// Workload F's read-modify-writes go through the cross-shard 2PC path.
	var out strings.Builder
	if err := run(smokeArgs("-shards", "4", "-workload", "F", "-backend", "naive-event"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	assertTableShape(t, got, "YCSB-F on sharded×4 store, naive-event backend (40 records, 120 ops)")
	if !strings.Contains(got, "modify") {
		t.Errorf("no read-modify-write rows in sharded txn run:\n%s", got)
	}
	if strings.Contains(got, "errors:") {
		t.Errorf("sharded txn run reported op errors:\n%s", got)
	}
}

func TestRunDocSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(smokeArgs("-db", "doc", "-workload", "B", "-backend", "naive-event"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	assertTableShape(t, out.String(), "YCSB-B on doc store, naive-event backend (40 records, 120 ops)")
}

// assertTableShape checks the golden output shape: the title line, the
// column header, at least one per-op row, and the trailing overall row
// whose count covers every operation.
func assertTableShape(t *testing.T, got, title string) {
	t.Helper()
	if !strings.Contains(got, title) {
		t.Errorf("output missing title %q:\n%s", title, got)
	}
	if !strings.Contains(got, "operation") || !strings.Contains(got, "p99") {
		t.Errorf("output missing column header:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	var overall string
	for _, l := range lines {
		if strings.HasPrefix(l, "overall") {
			overall = l
		}
	}
	if overall == "" {
		t.Fatalf("output missing overall row:\n%s", got)
	}
	if !strings.Contains(overall, "120") {
		t.Errorf("overall row %q does not report the 120 ops", overall)
	}
	if strings.Contains(got, "errors:") {
		t.Errorf("workload reported errors:\n%s", got)
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	// The whole run is virtual-time simulation: identical flags must give
	// byte-identical output.
	var a, b strings.Builder
	if err := run(smokeArgs("-db", "kv", "-workload", "F", "-seed", "7"), &a); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(smokeArgs("-db", "kv", "-workload", "F", "-seed", "7"), &b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("output differs across identical runs:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
}
