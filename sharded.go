package hyperloop

import (
	"fmt"

	"hyperloop/internal/cpusim"
	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
)

// Re-exported sharding types so downstream code needs only this package.
type (
	// ShardRouter partitions a keyspace across independent replication
	// groups; see internal/shard.
	ShardRouter = shard.Router
	// ShardWrite is one key update inside a (possibly cross-shard)
	// transaction.
	ShardWrite = shard.Write
	// ShardStats counts router-level outcomes.
	ShardStats = shard.Stats
	// ShardRecoverStats reports what one Router.Recover pass resolved.
	ShardRecoverStats = shard.RecoverStats
	// ShardPolicy maps keys to shards (hash or range).
	ShardPolicy = shard.Policy
	// ShardPlacement maps shard replicas to rack servers.
	ShardPlacement = shard.PlacementPolicy
	// ShardRoutingConfig sizes a router's key→shard mapping and per-shard
	// stores.
	ShardRoutingConfig = shard.Config
	// TxnStep identifies one coordinator-side 2PC action; step hooks
	// (ShardRouter.SetTxnStepHook) receive it for crash injection.
	TxnStep = txn.Step
)

// ErrTxnCoordinatorCrash is the sentinel a step hook returns to kill the
// coordinator mid-protocol; see txn.ErrCoordinatorCrash.
var ErrTxnCoordinatorCrash = txn.ErrCoordinatorCrash

// Shard routing and placement policies, and 2PC coordinator steps.
const (
	ShardHash           = shard.Hash
	ShardRange          = shard.Range
	PlaceRoundRobin     = shard.RoundRobin
	PlaceTenantAffinity = shard.TenantAffinity

	TxnStepLock        = txn.StepLock
	TxnStepAppend      = txn.StepAppend
	TxnStepLogCommit   = txn.StepLogCommit
	TxnStepExecute     = txn.StepExecute
	TxnStepUnlock      = txn.StepUnlock
	TxnStepLogTruncate = txn.StepLogTruncate
)

// ShardedClusterConfig sizes a sharded deployment: Shards independent
// replication groups placed across Servers machines. Every shard gets its
// own client NIC and per-replica NICs/devices (mirrors must start at
// device offset 0, so groups never share a device); servers contribute
// their CPU schedulers, hosting many NICs each, SR-IOV style.
type ShardedClusterConfig struct {
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// Shards is the number of partitions (default 4).
	Shards int
	// ReplicasPerShard is each group's chain length (default 3).
	ReplicasPerShard int
	// Servers is the rack size replicas are placed across (default
	// max(ReplicasPerShard, 4)).
	Servers int
	// CoresPerServer sizes each server's CPU (default 16).
	CoresPerServer int
	// Protocol names the registered replication protocol each group runs
	// (default "chain").
	Protocol string
	// Placement spreads replicas over servers (default PlaceRoundRobin).
	// PlaceTenantAffinity uses TenantOf to pack a tenant's shards.
	Placement ShardPlacement
	// TenantOf maps a shard to its owning tenant; only consulted by
	// PlaceTenantAffinity.
	TenantOf func(shard int) int
	// Routing configures the router's key→shard mapping and per-shard
	// store sizes; Routing.Shards is overwritten with Shards, and
	// Routing.CoordLog with the coordinator group's store when CommitLog
	// is set.
	Routing shard.Config
	// CommitLog, when true, provisions a dedicated replication group for
	// the coordinator's 2PC commit log: Txn durably records the commit
	// point before phase two and Router.Recover rolls record-bearing
	// transactions forward instead of aborting them. Off by default —
	// enabling it adds group traffic on the commit path, changing event
	// timing relative to a presumed-abort-only cluster.
	CommitLog bool
	// CommitLogSlots bounds concurrently in-flight commit records
	// (default 16). Only consulted when CommitLog is set.
	CommitLogSlots int
	// DeviceExtra is per-NIC device headroom past the mirror for rings and
	// staging buffers (default 1 MiB).
	DeviceExtra int
}

// ShardedCluster is a built sharded deployment.
type ShardedCluster struct {
	kernel *sim.Kernel
	fabric *rdma.Fabric
	scheds []*cpusim.Scheduler
	router *shard.Router
	coord  shard.Backend // coordinator commit-log group, nil unless CommitLog
}

// NewShardedCluster builds the deployment: a rack of servers, one
// replication group per shard placed across them, and a router over the
// groups.
func NewShardedCluster(cfg ShardedClusterConfig) (*ShardedCluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.ReplicasPerShard <= 0 {
		cfg.ReplicasPerShard = 3
	}
	if cfg.Servers <= 0 {
		cfg.Servers = cfg.ReplicasPerShard
		if cfg.Servers < 4 {
			cfg.Servers = 4
		}
	}
	if cfg.CoresPerServer <= 0 {
		cfg.CoresPerServer = 16
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "chain"
	}
	if cfg.DeviceExtra <= 0 {
		cfg.DeviceExtra = 1 << 20
	}
	cfg.Routing.Shards = cfg.Shards

	k := sim.NewKernel(cfg.Seed)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	c := &ShardedCluster{kernel: k, fabric: fab}
	for s := 0; s < cfg.Servers; s++ {
		sched, err := cpusim.New(k, cpusim.DefaultConfig(cfg.CoresPerServer))
		if err != nil {
			return nil, err
		}
		c.scheds = append(c.scheds, sched)
	}
	place, err := shard.Place(cfg.Placement, cfg.Shards, cfg.ReplicasPerShard, cfg.Servers, cfg.TenantOf)
	if err != nil {
		return nil, err
	}
	mirror := cfg.Routing.MirrorSize()
	if mirror <= 0 {
		return nil, fmt.Errorf("hyperloop: invalid shard routing config")
	}
	devSize := mirror + cfg.DeviceExtra
	if cfg.CommitLog {
		if cfg.CommitLogSlots <= 0 {
			cfg.CommitLogSlots = 16
		}
		// The coordinator's commit log lives on its own replication group
		// — never a shard's — so the commit point survives the coordinator
		// with the same fault tolerance as the data it governs.
		clLog := 256
		clData := txn.CommitLogSizeFor(cfg.CommitLogSlots, cfg.Shards)
		clDev := txn.MirrorSizeFor(clLog, clData) + cfg.DeviceExtra
		name := "cli/coord"
		client, err := fab.AddNIC(name, nvm.NewDevice(name, clDev))
		if err != nil {
			return nil, err
		}
		env := protocol.Env{Fabric: fab, Client: client}
		for j := 0; j < cfg.ReplicasPerShard; j++ {
			srv := j % cfg.Servers
			host := fmt.Sprintf("srv%d/coord.%d", srv, j)
			nic, err := fab.AddNIC(host, nvm.NewDevice(host, clDev))
			if err != nil {
				return nil, err
			}
			env.Replicas = append(env.Replicas, nic)
			env.Scheds = append(env.Scheds, c.scheds[srv])
		}
		backend, err := protocol.Build(cfg.Protocol, env, protocol.Params{MirrorSize: txn.MirrorSizeFor(clLog, clData)})
		if err != nil {
			return nil, err
		}
		c.coord = backend
		store, err := txn.New(backend, txn.Config{
			LogSize:   clLog,
			DataSize:  clData,
			LockToken: cfg.Routing.LockToken,
		})
		if err != nil {
			backend.Close()
			return nil, err
		}
		cfg.Routing.CoordLog = store
	}
	c.router, err = shard.New(cfg.Routing, func(id int) (shard.Backend, error) {
		name := fmt.Sprintf("cli/sh%d", id)
		client, err := fab.AddNIC(name, nvm.NewDevice(name, devSize))
		if err != nil {
			return nil, err
		}
		env := protocol.Env{Fabric: fab, Client: client}
		for j, srv := range place[id] {
			host := fmt.Sprintf("srv%d/sh%d.%d", srv, id, j)
			nic, err := fab.AddNIC(host, nvm.NewDevice(host, devSize))
			if err != nil {
				return nil, err
			}
			env.Replicas = append(env.Replicas, nic)
			env.Scheds = append(env.Scheds, c.scheds[srv])
		}
		return protocol.Build(cfg.Protocol, env, protocol.Params{MirrorSize: mirror})
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Router returns the shard router: Put/Get for single-key operations and
// Txn for atomic (cross-shard) transactions.
func (c *ShardedCluster) Router() *ShardRouter { return c.router }

// Kernel exposes the simulation kernel.
func (c *ShardedCluster) Kernel() *sim.Kernel { return c.kernel }

// Fabric exposes the RDMA fabric shared by all groups.
func (c *ShardedCluster) Fabric() *rdma.Fabric { return c.fabric }

// Schedulers returns each rack server's CPU scheduler.
func (c *ShardedCluster) Schedulers() []*cpusim.Scheduler {
	out := make([]*cpusim.Scheduler, len(c.scheds))
	copy(out, c.scheds)
	return out
}

// Run spawns fn as a fiber and drives the simulation until fn returns,
// mirroring Cluster.Run.
func (c *ShardedCluster) Run(fn func(f *Fiber) error) error {
	var fnErr error
	done := false
	c.kernel.Spawn("main", func(f *sim.Fiber) {
		fnErr = fn(f)
		done = true
		c.kernel.StopRun()
	})
	err := c.kernel.RunUntil(c.kernel.Now().Add(3600 * sim.Second))
	if err == sim.ErrStopped {
		err = nil
	}
	if err != nil {
		return err
	}
	if fnErr != nil {
		return fnErr
	}
	if !done {
		return fmt.Errorf("hyperloop: run did not complete within the simulation horizon")
	}
	return nil
}

// Close tears down every shard's replication group, plus the
// coordinator commit-log group when one was provisioned.
func (c *ShardedCluster) Close() {
	c.router.Close()
	if c.coord != nil {
		c.coord.Close()
	}
}
