module hyperloop

go 1.22
