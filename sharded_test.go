package hyperloop

import (
	"bytes"
	"testing"
)

func TestShardedClusterDefaults(t *testing.T) {
	c, err := NewShardedCluster(ShardedClusterConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Router().Shards(); got != 4 {
		t.Fatalf("default shards = %d", got)
	}
	if len(c.Schedulers()) != 4 {
		t.Fatalf("schedulers = %d", len(c.Schedulers()))
	}
	if c.Kernel() == nil || c.Fabric() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestShardedFacadeFlow(t *testing.T) {
	c, err := NewShardedCluster(ShardedClusterConfig{
		Seed:             7,
		Shards:           8,
		ReplicasPerShard: 2,
		Servers:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.Router()
	err = c.Run(func(f *Fiber) error {
		for k := uint64(0); k < 32; k++ {
			if err := r.Put(f, k, []byte{byte(k), byte(k + 1)}); err != nil {
				return err
			}
		}
		// A cross-shard transaction through the facade types.
		return r.Txn(f, []ShardWrite{
			{Key: 100, Data: []byte("a")},
			{Key: 200, Data: []byte("b")},
			{Key: 300, Data: []byte("c")},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 32; k++ {
		got, err := r.Get(k)
		if err != nil || !bytes.Equal(got, []byte{byte(k), byte(k + 1)}) {
			t.Fatalf("get %d = %v (%v)", k, got, err)
		}
	}
	if got, _ := r.Get(200); !bytes.Equal(got, []byte("b")) {
		t.Fatalf("txn write lost: %v", got)
	}
	st := r.Stats()
	if st.Puts != 32 || st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardedClusterNaiveAffinity(t *testing.T) {
	c, err := NewShardedCluster(ShardedClusterConfig{
		Seed:             3,
		Shards:           6,
		ReplicasPerShard: 2,
		Servers:          6,
		CoresPerServer:   2,
		Protocol:         "naive",
		Placement:        PlaceTenantAffinity,
		TenantOf:         func(s int) int { return s / 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.Router()
	if err := c.Run(func(f *Fiber) error {
		return r.Put(f, 42, []byte("naive"))
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Get(42); string(got) != "naive" {
		t.Fatalf("get = %q", got)
	}
}

func TestShardedClusterBadConfig(t *testing.T) {
	if _, err := NewShardedCluster(ShardedClusterConfig{Protocol: "no-such-protocol"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := NewShardedCluster(ShardedClusterConfig{
		Placement: PlaceTenantAffinity, // no TenantOf
	}); err == nil {
		t.Fatal("affinity without TenantOf accepted")
	}
}

func TestShardedClusterCommitLog(t *testing.T) {
	c, err := NewShardedCluster(ShardedClusterConfig{
		Seed:             3,
		Shards:           4,
		ReplicasPerShard: 2,
		Servers:          2,
		CommitLog:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.Router()
	if r.CommitLog() == nil {
		t.Fatal("CommitLog option produced no coordinator log")
	}
	err = c.Run(func(f *Fiber) error {
		writes := []ShardWrite{
			{Key: 10, Data: []byte("x")},
			{Key: 11, Data: []byte("y")},
		}
		// Crash the coordinator right after the commit point, then
		// recover through the facade: the transaction must roll forward.
		step := 0
		r.SetTxnStepHook(func(s TxnStep, participant int) error {
			step++
			if s == TxnStepLogCommit {
				return ErrTxnCoordinatorCrash
			}
			return nil
		})
		if err := r.Txn(f, writes); err != ErrTxnCoordinatorCrash {
			return err
		}
		r.SetTxnStepHook(nil)
		rs, err := r.Recover(f)
		if err != nil {
			return err
		}
		if rs.Back != 0 || rs.Forward == 0 || rs.Records != 1 {
			t.Errorf("recover stats = %+v, want roll-forward of one record", rs)
		}
		// Retried transaction commits and the data is readable.
		return r.Txn(f, writes)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Get(10); !bytes.Equal(got, []byte("x")) {
		t.Fatalf("get(10) = %q", got)
	}
	st := r.Stats()
	if st.Commits != 1 || st.Aborts != 0 || st.InDoubt != 0 {
		t.Fatalf("stats = %+v, want exactly one commit", st)
	}
}
