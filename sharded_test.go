package hyperloop

import (
	"bytes"
	"testing"
)

func TestShardedClusterDefaults(t *testing.T) {
	c, err := NewShardedCluster(ShardedClusterConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Router().Shards(); got != 4 {
		t.Fatalf("default shards = %d", got)
	}
	if len(c.Schedulers()) != 4 {
		t.Fatalf("schedulers = %d", len(c.Schedulers()))
	}
	if c.Kernel() == nil || c.Fabric() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestShardedFacadeFlow(t *testing.T) {
	c, err := NewShardedCluster(ShardedClusterConfig{
		Seed:             7,
		Shards:           8,
		ReplicasPerShard: 2,
		Servers:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.Router()
	err = c.Run(func(f *Fiber) error {
		for k := uint64(0); k < 32; k++ {
			if err := r.Put(f, k, []byte{byte(k), byte(k + 1)}); err != nil {
				return err
			}
		}
		// A cross-shard transaction through the facade types.
		return r.Txn(f, []ShardWrite{
			{Key: 100, Data: []byte("a")},
			{Key: 200, Data: []byte("b")},
			{Key: 300, Data: []byte("c")},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 32; k++ {
		got, err := r.Get(k)
		if err != nil || !bytes.Equal(got, []byte{byte(k), byte(k + 1)}) {
			t.Fatalf("get %d = %v (%v)", k, got, err)
		}
	}
	if got, _ := r.Get(200); !bytes.Equal(got, []byte("b")) {
		t.Fatalf("txn write lost: %v", got)
	}
	st := r.Stats()
	if st.Puts != 32 || st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardedClusterNaiveAffinity(t *testing.T) {
	c, err := NewShardedCluster(ShardedClusterConfig{
		Seed:             3,
		Shards:           6,
		ReplicasPerShard: 2,
		Servers:          6,
		CoresPerServer:   2,
		Protocol:         "naive",
		Placement:        PlaceTenantAffinity,
		TenantOf:         func(s int) int { return s / 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.Router()
	if err := c.Run(func(f *Fiber) error {
		return r.Put(f, 42, []byte("naive"))
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Get(42); string(got) != "naive" {
		t.Fatalf("get = %q", got)
	}
}

func TestShardedClusterBadConfig(t *testing.T) {
	if _, err := NewShardedCluster(ShardedClusterConfig{Protocol: "no-such-protocol"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := NewShardedCluster(ShardedClusterConfig{
		Placement: PlaceTenantAffinity, // no TenantOf
	}); err == nil {
		t.Fatal("affinity without TenantOf accepted")
	}
}
