// Package hyperloop is a full reproduction of "HyperLoop: Group-Based
// NIC-Offloading to Accelerate Replicated Transactions in Multi-Tenant
// Storage Systems" (SIGCOMM 2018) as a deterministic simulation library.
//
// Because the paper's artifact requires Mellanox RNICs with the
// CORE-Direct WAIT verb, a patched libmlx4 and battery-backed DRAM, this
// library substitutes a verbs-level software RNIC model (see DESIGN.md):
// queue pairs with binary WQE rings in registered memory, WAIT-gated
// pre-posted chains, remote work-request manipulation via receive scatter,
// NVM with explicit flush durability, and a CFS-like multi-tenant CPU
// scheduler for the baseline's replica handlers.
//
// The package is a facade over the building blocks in internal/: it wires
// a simulated cluster and exposes the replication groups (HyperLoop and
// Naive-RDMA), the transaction layer, and the two storage applications
// (a RocksDB-like KV store and a MongoDB-like document store).
//
// Quickstart:
//
//	c, _ := hyperloop.NewCluster(hyperloop.ClusterConfig{Replicas: 3})
//	g, _ := c.NewGroup(1 << 20)
//	c.Run(func(f *hyperloop.Fiber) error {
//	    g.WriteLocal(0, []byte("hello"))
//	    return g.Write(f, 0, 5, true) // replicated + durable on 3 replicas
//	})
package hyperloop

import (
	"errors"
	"fmt"

	"hyperloop/internal/cpusim"
	hl "hyperloop/internal/hyperloop"
	"hyperloop/internal/naive"
	"hyperloop/internal/nvm"
	"hyperloop/internal/protocol"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Re-exported core types so downstream code needs only this package.
type (
	// Fiber is a cooperative coroutine driven by the simulation kernel;
	// blocking group operations take one.
	Fiber = sim.Fiber
	// Signal is a one-shot completion notification for async operations.
	Signal = sim.Signal
	// Group is a HyperLoop (NIC-offloaded) replication group.
	Group = hl.Group
	// NaiveGroup is the CPU-driven Naive-RDMA baseline group.
	NaiveGroup = naive.Group
	// NaiveMode selects how baseline replica CPUs pick up completions.
	NaiveMode = naive.Mode
	// NIC is a simulated RDMA NIC.
	NIC = rdma.NIC
	// Scheduler is a server's CPU scheduler.
	Scheduler = cpusim.Scheduler
)

// Baseline replica CPU modes.
const (
	NaiveEvent   = naive.ModeEvent
	NaivePolling = naive.ModePolling
	NaivePinned  = naive.ModePinned
)

// ClusterConfig sizes a simulated deployment.
type ClusterConfig struct {
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
	// Replicas is the chain length (default 3).
	Replicas int
	// CoresPerServer sizes each storage server's CPU (default 16).
	CoresPerServer int
	// DeviceSize is each machine's NVM capacity (default 16 MiB).
	DeviceSize int
	// MultiTenantLoad co-locates ~10 bursty tenant processes per core
	// plus stress hogs on every storage server, reproducing the paper's
	// environment. Only the Naive backend is affected — that is the point.
	MultiTenantLoad bool
}

// Cluster is a simulated deployment: one client machine and N storage
// servers connected by an RDMA fabric.
type Cluster struct {
	kernel *sim.Kernel
	fabric *rdma.Fabric
	client *rdma.NIC
	nics   []*rdma.NIC
	scheds []*cpusim.Scheduler
	cfg    ClusterConfig
}

// NewCluster builds the deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.CoresPerServer <= 0 {
		cfg.CoresPerServer = 16
	}
	if cfg.DeviceSize <= 0 {
		cfg.DeviceSize = 16 << 20
	}
	k := sim.NewKernel(cfg.Seed)
	fab := rdma.NewFabric(k, rdma.DefaultConfig())
	client, err := fab.AddNIC("client", nvm.NewDevice("client", cfg.DeviceSize))
	if err != nil {
		return nil, err
	}
	c := &Cluster{kernel: k, fabric: fab, client: client, cfg: cfg}
	for i := 0; i < cfg.Replicas; i++ {
		host := fmt.Sprintf("server-%d", i)
		nic, err := fab.AddNIC(host, nvm.NewDevice(host, cfg.DeviceSize))
		if err != nil {
			return nil, err
		}
		sched, err := cpusim.New(k, cpusim.DefaultConfig(cfg.CoresPerServer))
		if err != nil {
			return nil, err
		}
		if cfg.MultiTenantLoad {
			sched.AddHogs(cfg.CoresPerServer / 2)
			sched.AddNoise(10*cfg.CoresPerServer, 300*sim.Microsecond, 2700*sim.Microsecond)
			sched.AddStorms(2*cfg.CoresPerServer, 200*sim.Millisecond, 4*sim.Millisecond)
		}
		c.nics = append(c.nics, nic)
		c.scheds = append(c.scheds, sched)
	}
	return c, nil
}

// Kernel exposes the simulation kernel (timers, fibers, virtual clock).
func (c *Cluster) Kernel() *sim.Kernel { return c.kernel }

// Fabric exposes the RDMA fabric.
func (c *Cluster) Fabric() *rdma.Fabric { return c.fabric }

// ClientNIC returns the client machine's NIC.
func (c *Cluster) ClientNIC() *rdma.NIC { return c.client }

// ReplicaNICs returns the storage servers' NICs in chain order.
func (c *Cluster) ReplicaNICs() []*rdma.NIC {
	out := make([]*rdma.NIC, len(c.nics))
	copy(out, c.nics)
	return out
}

// Schedulers returns each storage server's CPU scheduler.
func (c *Cluster) Schedulers() []*cpusim.Scheduler {
	out := make([]*cpusim.Scheduler, len(c.scheds))
	copy(out, c.scheds)
	return out
}

// NewGroup builds a HyperLoop (NIC-offloaded) replication group whose
// mirrored region spans mirrorSize bytes on every member.
func (c *Cluster) NewGroup(mirrorSize int) (*Group, error) {
	return hl.Setup(c.fabric, c.client, c.nics, hl.DefaultConfig(mirrorSize))
}

// NewGroupWithConfig builds a HyperLoop group with full control.
func (c *Cluster) NewGroupWithConfig(cfg hl.Config) (*Group, error) {
	return hl.Setup(c.fabric, c.client, c.nics, cfg)
}

// NewNaiveGroup builds the Naive-RDMA baseline group: the same chain, but
// replica CPUs on the critical path in the given mode. Under
// MultiTenantLoad the handlers also carry the per-tenant wakeup-placement
// penalty (DESIGN.md, "multi-tenant latency model").
func (c *Cluster) NewNaiveGroup(mirrorSize int, mode NaiveMode) (*NaiveGroup, error) {
	cfg := naive.DefaultConfig(mirrorSize)
	cfg.Mode = mode
	if c.cfg.MultiTenantLoad {
		cfg.WakePenalty = 3 * sim.Millisecond
		cfg.WakePenaltyProb = 0.015
	}
	return naive.Setup(c.fabric, c.client, c.nics, c.scheds, cfg)
}

// Run spawns fn as a fiber, drives the simulation until fn returns (or the
// horizon passes), and returns fn's error. It is the main entry point for
// programs using the library.
func (c *Cluster) Run(fn func(f *Fiber) error) error {
	var fnErr error
	done := false
	c.kernel.Spawn("main", func(f *sim.Fiber) {
		fnErr = fn(f)
		done = true
		c.kernel.StopRun()
	})
	err := c.kernel.RunUntil(c.kernel.Now().Add(3600 * sim.Second))
	if errors.Is(err, sim.ErrStopped) {
		err = nil
	}
	if err != nil {
		return err
	}
	if fnErr != nil {
		return fnErr
	}
	if !done {
		return fmt.Errorf("hyperloop: run did not complete within the simulation horizon")
	}
	return nil
}

// HyperLoopConfig re-exports the group configuration.
type HyperLoopConfig = hl.Config

// DefaultGroupConfig returns the default group configuration for a mirror
// of the given size.
func DefaultGroupConfig(mirrorSize int) hl.Config { return hl.DefaultConfig(mirrorSize) }

// NewGroupOver builds a HyperLoop group over an explicit replica chain —
// for example after failover replaced a member (see examples/failover).
func (c *Cluster) NewGroupOver(replicas []*rdma.NIC, mirrorSize int) (*Group, error) {
	return hl.Setup(c.fabric, c.client, replicas, hl.DefaultConfig(mirrorSize))
}

// FanoutGroup is the §7 extension: a primary's NIC coordinates all backups
// in parallel instead of a chain.
type FanoutGroup = hl.FanoutGroup

// NewFanoutGroup builds a fan-out replication group over the cluster's
// servers (server 0 is the primary).
func (c *Cluster) NewFanoutGroup(mirrorSize int) (*FanoutGroup, error) {
	return hl.SetupFanout(c.fabric, c.client, c.nics, hl.DefaultConfig(mirrorSize))
}

// BroadcastGroup is the quorum broadcast protocol: the client NIC fans
// values to every replica and completes on a quorum of hardware acks.
type BroadcastGroup = hl.BroadcastGroup

// NewBroadcastGroup builds a broadcast replication group over the
// cluster's servers; quorum 0 completes on all member acks.
func (c *Cluster) NewBroadcastGroup(mirrorSize, quorum int) (*BroadcastGroup, error) {
	cfg := hl.DefaultConfig(mirrorSize)
	cfg.AckQuorum = quorum
	return hl.SetupBroadcast(c.fabric, c.client, c.nics, cfg)
}

// Protocol is the replication-strategy interface every group implements;
// see internal/protocol for the contract.
type Protocol = protocol.Protocol

// ProtocolParams is the policy half of a protocol build: mirror size,
// window depth, timeout/retry, quorum.
type ProtocolParams = protocol.Params

// Protocols returns the names of all registered replication protocols,
// sorted (chain, fanout, bcast, bcast-maj, naive, plus any registered by
// downstream packages).
func Protocols() []string { return protocol.Names() }

// DescribeProtocol returns a protocol's one-line description ("" if
// unknown).
func DescribeProtocol(name string) string { return protocol.Describe(name) }

// NewProtocolGroup builds the named replication protocol over the
// cluster's servers with default policy.
func (c *Cluster) NewProtocolGroup(name string, mirrorSize int) (Protocol, error) {
	return c.NewProtocolGroupWithParams(name, protocol.Params{MirrorSize: mirrorSize})
}

// NewProtocolGroupWithParams builds the named protocol with full policy
// control.
func (c *Cluster) NewProtocolGroupWithParams(name string, p protocol.Params) (Protocol, error) {
	return protocol.Build(name, protocol.Env{
		Fabric:   c.fabric,
		Client:   c.client,
		Replicas: c.ReplicaNICs(),
		Scheds:   c.Schedulers(),
	}, p)
}
