// Group locking example: two transaction coordinators contend on the same
// replicated store's write lock (gCAS with selective-execution undo), and
// readers take per-replica read locks concurrently.
package main

import (
	"fmt"
	"log"

	"hyperloop"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := hyperloop.NewCluster(hyperloop.ClusterConfig{Seed: 23, Replicas: 3})
	if err != nil {
		return err
	}
	const logSize, dataSize = 32 * 1024, 64 * 1024
	group, err := cluster.NewGroup(txn.MirrorSizeFor(logSize, dataSize))
	if err != nil {
		return err
	}
	// Two writers with distinct lock tokens share the group.
	w1, err := txn.New(group, txn.Config{LogSize: logSize, DataSize: dataSize, LockToken: 1})
	if err != nil {
		return err
	}
	w2, err := txn.New(group, txn.Config{LogSize: logSize, DataSize: dataSize, LockToken: 2})
	if err != nil {
		return err
	}

	k := cluster.Kernel()
	done := 0
	finish := func() {
		done++
		if done == 3 {
			k.StopRun()
		}
	}
	transact := func(name string, st *txn.Store, off int) func(f *sim.Fiber) {
		return func(f *sim.Fiber) {
			defer finish()
			for i := 0; i < 3; i++ {
				start := f.Now()
				err := st.WithWrLock(f, func() error {
					if _, err := st.Append(f, []wal.Entry{
						{Off: off, Data: []byte(fmt.Sprintf("%s-txn-%d", name, i))},
					}); err != nil {
						return err
					}
					_, err := st.ExecuteAll(f)
					return err
				})
				if err != nil {
					log.Printf("%s txn %d: %v", name, i, err)
					return
				}
				fmt.Printf("%6s committed txn %d in %v (waited for the group lock if contended)\n",
					name, i, f.Now().Sub(start))
			}
		}
	}
	k.Spawn("writer-1", transact("w1", w1, 0))
	k.Spawn("writer-2", transact("w2", w2, 256))
	k.Spawn("reader", func(f *sim.Fiber) {
		defer finish()
		for i := 0; i < 4; i++ {
			f.Sleep(40 * sim.Microsecond)
			replica := i % 3
			if err := w1.RdLock(f, replica); err != nil {
				log.Printf("reader: %v", err)
				return
			}
			data, err := w1.ReadData(0, 16)
			_ = w1.RdUnlock(f, replica)
			if err != nil {
				log.Printf("reader: %v", err)
				return
			}
			fmt.Printf("reader saw %q via replica %d under rdLock\n", trim(data), replica)
		}
	})
	if err := k.RunUntil(k.Now().Add(10 * sim.Second)); err != nil && err != sim.ErrStopped {
		return err
	}

	// Show the final lock word is released on every replica.
	locked, err := w1.Locked()
	if err != nil {
		return err
	}
	fmt.Printf("write lock held after all transactions: %v\n", locked)
	return nil
}

func trim(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}
