// Quickstart: build a 3-replica HyperLoop group and exercise all four
// group primitives — gWRITE, gFLUSH, gMEMCPY and gCAS — showing that the
// replicas' memories mirror the client's without any replica CPU on the
// datapath.
package main

import (
	"fmt"
	"log"

	"hyperloop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := hyperloop.NewCluster(hyperloop.ClusterConfig{
		Seed:     42,
		Replicas: 3,
	})
	if err != nil {
		return err
	}
	const mirror = 1 << 20
	group, err := cluster.NewGroup(mirror)
	if err != nil {
		return err
	}

	return cluster.Run(func(f *hyperloop.Fiber) error {
		// gWRITE + interleaved gFLUSH: replicate 'payload' durably.
		payload := []byte("replicated transaction payload")
		if err := group.WriteLocal(0, payload); err != nil {
			return err
		}
		start := f.Now()
		if err := group.Write(f, 0, len(payload), true); err != nil {
			return err
		}
		fmt.Printf("gWRITE(%dB, durable) over 3 replicas: %v\n", len(payload), f.Now().Sub(start))

		// gMEMCPY: execute a "log record" by copying it to the data area
		// on every member.
		start = f.Now()
		if err := group.Memcpy(f, 0, 4096, len(payload), true); err != nil {
			return err
		}
		fmt.Printf("gMEMCPY(%dB, durable): %v\n", len(payload), f.Now().Sub(start))

		// gCAS: acquire a group lock, observe contention, release.
		start = f.Now()
		res, err := group.CAS(f, 8192, 0, 77, []bool{true, true, true})
		if err != nil {
			return err
		}
		fmt.Printf("gCAS acquire: %v, originals=%v (all 0 ⇒ acquired)\n", f.Now().Sub(start), res)
		res, err = group.CAS(f, 8192, 0, 99, []bool{true, true, true})
		if err != nil {
			return err
		}
		fmt.Printf("gCAS re-acquire originals=%v (all 77 ⇒ correctly refused)\n", res)

		// Power-fail every replica: the durable write must survive.
		for i, nic := range cluster.ReplicaNICs() {
			nic.Memory().Crash()
			buf := make([]byte, len(payload))
			if err := nic.Memory().Read(4096, buf); err != nil {
				return err
			}
			fmt.Printf("replica %d after crash, data area: %q\n", i, buf)
		}

		// Replica CPUs never ran: the whole exchange was NIC-to-NIC.
		for i, s := range cluster.Schedulers() {
			fmt.Printf("replica %d CPU utilization: %.4f (HyperLoop keeps it at zero)\n",
				i, s.Utilization())
		}
		return nil
	})
}
