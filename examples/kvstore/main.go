// Replicated key-value store example (the paper's RocksDB case study):
// writes go through the replicated write-ahead log, a checkpoint truncates
// it, the client crashes, and recovery rebuilds the exact state from the
// replicas' durable NVM.
package main

import (
	"fmt"
	"log"

	"hyperloop"
	"hyperloop/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := hyperloop.NewCluster(hyperloop.ClusterConfig{Seed: 7, Replicas: 3})
	if err != nil {
		return err
	}
	cfg := kvstore.Config{LogSize: 64 * 1024, DataSize: 256 * 1024, CheckpointEvery: 10, Seed: 7}
	group, err := cluster.NewGroup(kvstore.MirrorSizeFor(cfg))
	if err != nil {
		return err
	}
	db, err := kvstore.Open(group, cfg)
	if err != nil {
		return err
	}

	return cluster.Run(func(f *hyperloop.Fiber) error {
		// Write a working set; the store checkpoints every 10 mutations.
		for i := 0; i < 25; i++ {
			key := fmt.Sprintf("user%04d", i%12)
			val := fmt.Sprintf("profile-v%d", i)
			if err := db.Put(f, []byte(key), []byte(val)); err != nil {
				return err
			}
		}
		if err := db.Delete(f, []byte("user0003")); err != nil {
			return err
		}
		fmt.Printf("before crash: %d keys, stats %+v\n", db.Len(), db.Stats())

		// Show a ranged scan.
		for _, p := range db.Scan([]byte("user0005"), 3) {
			fmt.Printf("  scan: %s = %s\n", p.Key, p.Value)
		}

		// Power-fail the client machine. Everything volatile is gone.
		cluster.ClientNIC().Memory().Crash()
		if err := db.Recover(f); err != nil {
			return err
		}
		fmt.Printf("after client crash + recovery: %d keys\n", db.Len())
		if v, ok := db.Get([]byte("user0011")); ok {
			fmt.Printf("  user0011 = %s\n", v)
		}
		if _, ok := db.Get([]byte("user0003")); !ok {
			fmt.Println("  user0003 stays deleted — tombstone replayed correctly")
		}

		// An eventually-consistent read served from a backup replica's own
		// NVM, with no client involvement (§5.1 replica reads).
		img := make([]byte, kvstore.MirrorSizeFor(cfg))
		if err := cluster.ReplicaNICs()[2].Memory().Read(0, img); err != nil {
			return err
		}
		view, err := kvstore.LoadView(img, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("tail replica view has %d keys; user0007 = %s\n",
			len(view), view["user0007"])
		return nil
	})
}
