// Replicated document store example (the paper's MongoDB case study):
// JSON documents, a journal executed with gMEMCPY under group locks, and
// consistent reads served from a backup replica under a read lock.
package main

import (
	"fmt"
	"log"

	"hyperloop"
	"hyperloop/internal/docstore"
	"hyperloop/internal/ycsb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := hyperloop.NewCluster(hyperloop.ClusterConfig{Seed: 11, Replicas: 3})
	if err != nil {
		return err
	}
	cfg := docstore.Config{LogSize: 64 * 1024, DataSize: 512 * 1024, SlotSize: 1536}
	group, err := cluster.NewGroup(docstore.MirrorSizeFor(cfg))
	if err != nil {
		return err
	}
	st, err := docstore.Open(group, cfg)
	if err != nil {
		return err
	}

	return cluster.Run(func(f *hyperloop.Fiber) error {
		// Insert documents.
		users := []docstore.Doc{
			{"_id": "u1", "name": "ada", "city": "london", "age": float64(36)},
			{"_id": "u2", "name": "grace", "city": "arlington", "age": float64(45)},
			{"_id": "u3", "name": "edsger", "city": "austin", "age": float64(72)},
		}
		for _, u := range users {
			start := f.Now()
			if err := st.Insert(f, "users", u); err != nil {
				return err
			}
			fmt.Printf("insert %s: %v (journal + gMEMCPY execute under group lock)\n",
				u["_id"], f.Now().Sub(start))
		}

		// Update merges fields.
		if err := st.Update(f, "users", "u2", docstore.Doc{"city": "washington"}); err != nil {
			return err
		}
		doc, err := st.FindID("users", "u2")
		if err != nil {
			return err
		}
		fmt.Printf("u2 after update: name=%v city=%v\n", doc["name"], doc["city"])

		// Consistent read from the middle backup under a per-replica read
		// lock — the paper's high-read-throughput path.
		mem := cluster.ReplicaNICs()[1].Memory()
		reader := func(off, n int) ([]byte, error) {
			buf := make([]byte, n)
			err := mem.Read(off, buf)
			return buf, err
		}
		rdoc, err := st.ReadReplica(f, 1, reader, "users", "u3")
		if err != nil {
			return err
		}
		fmt.Printf("replica-1 read of u3: name=%v (served under rdLock)\n", rdoc["name"])

		// Drive a short YCSB-B mix against the store.
		runner := ycsb.NewRunner(ycsb.RunnerConfig{
			Workload:    ycsb.WorkloadB,
			RecordCount: 40,
			OpCount:     200,
			ValueSize:   256,
			Seed:        3,
		})
		ad := adapter{st: st}
		if err := runner.Load(f, ad); err != nil {
			return err
		}
		res, err := runner.Run(f, ad)
		if err != nil {
			return err
		}
		fmt.Printf("YCSB-B (95%% read / 5%% update): %s\n", res.Overall.Summarize())
		return nil
	})
}

// adapter maps YCSB ops onto the document store.
type adapter struct{ st *docstore.Store }

func (a adapter) Read(f *hyperloop.Fiber, key int) error {
	_, err := a.st.FindID("usertable", ycsb.Key(key))
	return err
}

func (a adapter) Update(f *hyperloop.Fiber, key int, v []byte) error {
	return a.st.Update(f, "usertable", ycsb.Key(key), docstore.Doc{"field0": string(v)})
}

func (a adapter) Insert(f *hyperloop.Fiber, key int, v []byte) error {
	return a.st.Insert(f, "usertable", docstore.Doc{"_id": ycsb.Key(key), "field0": string(v)})
}

func (a adapter) Scan(f *hyperloop.Fiber, start, count int) error {
	_, err := a.st.Scan("usertable", ycsb.Key(start), count)
	return err
}

func (a adapter) ReadModifyWrite(f *hyperloop.Fiber, key int, v []byte) error {
	if err := a.Read(f, key); err != nil {
		return err
	}
	return a.Update(f, key, v)
}
