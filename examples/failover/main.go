// Failover example (§5 recovery): a replica dies mid-workload; heartbeats
// detect it; writes pause; a spare machine catches up from a healthy
// member; a fresh HyperLoop datapath is established; writes resume.
package main

import (
	"fmt"
	"log"

	"hyperloop"
	"hyperloop/internal/chain"
	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := hyperloop.NewCluster(hyperloop.ClusterConfig{Seed: 5, Replicas: 3})
	if err != nil {
		return err
	}
	const logSize, dataSize = 32 * 1024, 64 * 1024
	mirror := txn.MirrorSizeFor(logSize, dataSize)

	gcfg := hyperloop.DefaultGroupConfig(mirror)
	gcfg.OpTimeout = 2 * sim.Millisecond
	group, err := cluster.NewGroupWithConfig(gcfg)
	if err != nil {
		return err
	}
	store, err := txn.New(group, txn.Config{LogSize: logSize, DataSize: dataSize})
	if err != nil {
		return err
	}

	// A spare machine stands by.
	spare, err := cluster.Fabric().AddNIC("spare", nvm.NewDevice("spare", 16<<20))
	if err != nil {
		return err
	}

	replicas := cluster.ReplicaNICs()
	monitor, err := chain.New(cluster.Kernel(), replicas, chain.DefaultConfig())
	if err != nil {
		return err
	}
	suspected := sim.NewSignal()
	monitor.OnSuspect(func(idx int) {
		fmt.Printf("heartbeat monitor: replica %d suspected after consecutive misses — pausing writes\n", idx)
		monitor.PauseWrites()
		suspected.Fire(nil)
	})
	monitor.Start()

	return cluster.Run(func(f *hyperloop.Fiber) error {
		for i := 0; i < 5; i++ {
			if _, err := store.Append(f, []wal.Entry{
				{Off: i * 64, Data: []byte(fmt.Sprintf("record-%d", i))},
			}); err != nil {
				return err
			}
		}
		if _, err := store.ExecuteAll(f); err != nil {
			return err
		}
		fmt.Println("phase 1: 5 transactions committed on the healthy chain")

		// Replica 1 loses power.
		replicas[1].SetDown(true)
		if err := f.Await(suspected); err != nil {
			return err
		}

		// Catch-up: ship a healthy member's image to the spare.
		start := f.Now()
		src, err := monitor.CatchUp(f, spare, mirror)
		if err != nil {
			return err
		}
		fmt.Printf("catch-up from replica %d to spare took %v\n", src, f.Now().Sub(start))
		if err := monitor.Replace(1, spare); err != nil {
			return err
		}

		// Re-establish the datapath over the repaired chain.
		group2, err := cluster.NewGroupOver([]*hyperloop.NIC{replicas[0], spare, replicas[2]}, mirror)
		if err != nil {
			return err
		}
		store2, err := txn.New(group2, txn.Config{LogSize: logSize, DataSize: dataSize})
		if err != nil {
			return err
		}
		if _, err := store2.Recover(f); err != nil {
			return err
		}
		monitor.ResumeWrites()
		fmt.Println("datapath re-established; writes resumed")

		if _, err := store2.Append(f, []wal.Entry{{Off: 1024, Data: []byte("post-failover")}}); err != nil {
			return err
		}
		if _, err := store2.ExecuteAll(f); err != nil {
			return err
		}
		buf := make([]byte, 13)
		if err := spare.Memory().Read(txn.CtrlSize+logSize+1024, buf); err != nil {
			return err
		}
		fmt.Printf("spare replica data after failover: %q\n", buf)
		return nil
	})
}
